package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"seedb/internal/telemetry"
)

// ExecOptions controls one query execution.
type ExecOptions struct {
	// Ctx, when non-nil, is checked periodically during scans so callers
	// can cancel long-running queries.
	Ctx context.Context
	// Lo and Hi restrict the scan to table rows in [Lo, Hi). Hi <= 0
	// means "to the end of the table". SeeDB's phased execution framework
	// uses this to process the i-th of n partitions.
	Lo, Hi int
	// Workers sets the intra-query scan parallelism. Values <= 1 select
	// the serial row interpreter. Values > 1 enable the parallel
	// vectorized fast path (see vexec.go) for grouped-aggregation queries
	// over column-store tables; queries or tables the fast path cannot
	// handle fall back to the serial interpreter. The effective count is
	// capped at a small multiple of GOMAXPROCS (and at the scanned row
	// count), so forwarding an untrusted value cannot spawn unbounded
	// goroutines. The parallel merge is
	// deterministic (first-seen group order is preserved), but SUM/AVG
	// reassociate floating-point addition across chunks, so float
	// aggregates may differ from the serial result in final ulps on data
	// whose partial sums are inexact.
	Workers int
	// NoSelectionKernels disables the compiled predicate selection
	// kernels inside the vectorized fast path: WHERE and CASE-flag
	// predicates then evaluate through their per-row closures, as they
	// did before predicate compilation existed. A cost-only debugging and
	// benchmarking knob — results are identical either way.
	NoSelectionKernels bool
}

// ExecStats reports per-query execution measurements.
type ExecStats struct {
	// RowsScanned is the number of base-table rows visited.
	RowsScanned int
	// Groups is the peak number of distinct groups materialized by hash
	// aggregation — the engine's memory-utilization proxy for the SeeDB
	// memory budget B (Problem 4.1 in the paper).
	Groups int
	// Vectorized reports whether the parallel vectorized fast path
	// executed the aggregation (false for the serial interpreter and for
	// non-grouped queries).
	Vectorized bool
	// FallbackReason says why Vectorized is false ("serial execution",
	// "non-column group key", "distinct agg", "id-space overflow", ...).
	// Empty when the fast path ran.
	FallbackReason string
	// Workers is the number of scan workers actually used (1 for the
	// serial interpreter; never more than the scanned row count).
	Workers int
	// SelectionKernels counts the compiled predicate kernels this
	// execution bound (WHERE conjuncts plus CASE-flag conjuncts);
	// ResidualPredicates counts the conjuncts that stayed on the per-row
	// closure path (the hybrid residual filter). Both are zero for the
	// serial interpreter and when NoSelectionKernels is set.
	SelectionKernels   int
	ResidualPredicates int
}

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    [][]Value
	Stats   ExecStats
}

// checkEvery is how many rows pass between context cancellation checks.
const checkEvery = 8192

// plan is a compiled SELECT ready for execution.
type plan struct {
	table    Table
	filter   evalFn
	scanCols []int

	grouped   bool
	groupKeys []evalFn
	aggs      []aggSpec
	having    evalFn   // over groupRow; nil when absent
	outputs   []evalFn // over groupRow (grouped) or base row (simple)
	colNames  []string

	orderBy  []orderKey
	distinct bool
	limit    int
	offset   int

	// vec is the vectorized fast-path analysis of a grouped plan, or nil
	// when the query shape is not eligible (see vexec.go); vecReason
	// names the disqualifying shape when vec is nil. noVec marks a
	// merge-only plan that skipped the analysis altogether.
	vec       *vecInfo
	vecReason string
	noVec     bool
}

// orderKey is a compiled ORDER BY entry. If outCol >= 0 the key is an
// output column; otherwise eval computes it.
type orderKey struct {
	outCol int
	eval   evalFn
	desc   bool
}

// groupRow is the finalize-phase RowView: group-key values followed by
// finalized aggregate values.
type groupRow struct {
	keys []Value
	aggs []Value
}

// Value implements RowView over the virtual (keys ++ aggs) layout.
func (g groupRow) Value(i int) Value {
	if i < len(g.keys) {
		return g.keys[i]
	}
	return g.aggs[i-len(g.keys)]
}

// compileForSchemaOpt plans stmt against a schema alone. The resulting
// plan can finalize group entries and post-process rows (the shard-merge
// path in shardexec.go), but needs plan.table assigned before execute
// can scan (the query entry points in db.go do that). analyzeVec enables
// the vectorized fast-path analysis (selection-kernel compilation
// included); serial executions and merge-only plans skip it — the
// analysis is never consulted there, and it is a measurable per-query
// cost on a fan-out router's hot path.
func compileForSchemaOpt(stmt *SelectStmt, schema *Schema, analyzeVec bool) (*plan, error) {
	p := &plan{limit: stmt.Limit, offset: stmt.Offset, distinct: stmt.Distinct, noVec: !analyzeVec}

	// Expand SELECT *.
	items := make([]SelectItem, 0, len(stmt.Items))
	for _, it := range stmt.Items {
		if c, ok := it.Expr.(*ColumnExpr); ok && c.Name == "*" {
			for _, col := range schema.Columns() {
				items = append(items, SelectItem{Expr: &ColumnExpr{Name: col.Name}})
			}
			continue
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("sqldb: empty select list")
	}

	hasAgg := false
	for _, it := range items {
		if IsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}
	// HAVING implies aggregation (over one global group when GROUP BY is
	// absent).
	p.grouped = hasAgg || len(stmt.GroupBy) > 0 || stmt.Having != nil

	// Column names.
	for i, it := range items {
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*ColumnExpr); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		p.colNames = append(p.colNames, name)
	}

	// Filter.
	var err error
	if stmt.Where != nil {
		if IsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sqldb: aggregates are not allowed in WHERE")
		}
		p.filter, err = compileScalar(stmt.Where, schema)
		if err != nil {
			return nil, err
		}
		p.scanCols, err = referencedColumns(stmt.Where, schema, p.scanCols)
		if err != nil {
			return nil, err
		}
	}

	if !p.grouped {
		if stmt.Having != nil {
			return nil, fmt.Errorf("sqldb: HAVING requires aggregation")
		}
		return compileSimplePlan(p, stmt, items, schema)
	}
	return compileGroupedPlan(p, stmt, items, schema)
}

// compileSimplePlan finishes planning a projection-only query.
func compileSimplePlan(p *plan, stmt *SelectStmt, items []SelectItem, schema *Schema) (*plan, error) {
	var err error
	for _, it := range items {
		out, cerr := compileScalar(it.Expr, schema)
		if cerr != nil {
			return nil, cerr
		}
		p.outputs = append(p.outputs, out)
		p.scanCols, err = referencedColumns(it.Expr, schema, p.scanCols)
		if err != nil {
			return nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		key, kerr := compileOrderKey(o, items, func(e Expr) (evalFn, error) {
			f, cerr := compileScalar(e, schema)
			if cerr != nil {
				return nil, cerr
			}
			var rerr error
			p.scanCols, rerr = referencedColumns(e, schema, p.scanCols)
			if rerr != nil {
				return nil, rerr
			}
			return f, nil
		})
		if kerr != nil {
			return nil, kerr
		}
		p.orderBy = append(p.orderBy, key)
	}
	return p, nil
}

// compileGroupedPlan finishes planning an aggregation query.
func compileGroupedPlan(p *plan, stmt *SelectStmt, items []SelectItem, schema *Schema) (*plan, error) {
	var err error
	groupStrs := make([]string, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		if IsAggregate(g) {
			return nil, fmt.Errorf("sqldb: aggregates are not allowed in GROUP BY")
		}
		key, cerr := compileScalar(g, schema)
		if cerr != nil {
			return nil, cerr
		}
		p.groupKeys = append(p.groupKeys, key)
		groupStrs[i] = g.String()
		p.scanCols, err = referencedColumns(g, schema, p.scanCols)
		if err != nil {
			return nil, err
		}
	}

	// Rewrite each select item: aggregate calls become virtual columns
	// $aggN (planning the aggregate into a slot), and sub-expressions
	// textually matching a GROUP BY expression become $keyN.
	rw := &aggRewriter{p: p, schema: schema, groupStrs: groupStrs}
	virtual := rw.virtualSchemaBuilder()

	compileFinal := func(e Expr) (evalFn, error) {
		re, rerr := rw.rewrite(e)
		if rerr != nil {
			return nil, rerr
		}
		return compileScalar(re, virtual())
	}

	for _, it := range items {
		out, cerr := compileFinal(it.Expr)
		if cerr != nil {
			return nil, cerr
		}
		p.outputs = append(p.outputs, out)
	}
	if stmt.Having != nil {
		h, herr := compileFinal(stmt.Having)
		if herr != nil {
			return nil, herr
		}
		p.having = h
	}
	for _, o := range stmt.OrderBy {
		key, kerr := compileOrderKey(o, items, compileFinal)
		if kerr != nil {
			return nil, kerr
		}
		p.orderBy = append(p.orderBy, key)
	}
	if !p.noVec {
		p.vec, p.vecReason = vectorizeGrouped(stmt, p, schema)
	}
	return p, nil
}

// aggRewriter rewrites post-aggregation expressions onto the virtual
// (group keys ++ aggregate slots) schema.
type aggRewriter struct {
	p         *plan
	schema    *Schema
	groupStrs []string
}

// virtualSchemaBuilder returns a function that builds the virtual schema
// reflecting the aggregate slots planned so far (slots are appended lazily
// as rewrite encounters aggregate calls).
func (rw *aggRewriter) virtualSchemaBuilder() func() *Schema {
	return func() *Schema {
		cols := make([]Column, 0, len(rw.groupStrs)+len(rw.p.aggs))
		for i := range rw.groupStrs {
			cols = append(cols, Column{Name: fmt.Sprintf("$key%d", i), Type: TypeString})
		}
		for i := range rw.p.aggs {
			cols = append(cols, Column{Name: fmt.Sprintf("$agg%d", i), Type: TypeFloat})
		}
		s, err := NewSchema(cols...)
		if err != nil {
			panic(err) // virtual names are unique by construction
		}
		return s
	}
}

// rewrite maps e onto the virtual schema, planning aggregate slots.
func (rw *aggRewriter) rewrite(e Expr) (Expr, error) {
	// A sub-expression equal to a GROUP BY expression becomes a key ref.
	s := e.String()
	for i, g := range rw.groupStrs {
		if s == g {
			return &ColumnExpr{Name: fmt.Sprintf("$key%d", i)}, nil
		}
	}
	switch n := e.(type) {
	case *LiteralExpr:
		return n, nil
	case *ColumnExpr:
		return nil, fmt.Errorf("sqldb: column %q must appear in GROUP BY or inside an aggregate", n.Name)
	case *FuncExpr:
		if aggFuncs[n.Name] {
			spec, err := newAggSpec(n, rw.schema)
			if err != nil {
				return nil, err
			}
			var rerr error
			rw.p.scanCols, rerr = funcArgColumns(n, rw.schema, rw.p.scanCols)
			if rerr != nil {
				return nil, rerr
			}
			rw.p.aggs = append(rw.p.aggs, spec)
			return &ColumnExpr{Name: fmt.Sprintf("$agg%d", len(rw.p.aggs)-1)}, nil
		}
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := rw.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &FuncExpr{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}, nil
	case *UnaryExpr:
		x, err := rw.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: n.Op, X: x}, nil
	case *BinaryExpr:
		l, err := rw.rewrite(n.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(n.R)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: n.Op, L: l, R: r}, nil
	case *InExpr:
		x, err := rw.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(n.List))
		for i, le := range n.List {
			rl, err := rw.rewrite(le)
			if err != nil {
				return nil, err
			}
			list[i] = rl
		}
		return &InExpr{X: x, List: list, Neg: n.Neg}, nil
	case *IsNullExpr:
		x, err := rw.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{X: x, Neg: n.Neg}, nil
	case *BetweenExpr:
		x, err := rw.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		lo, err := rw.rewrite(n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := rw.rewrite(n.Hi)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: x, Lo: lo, Hi: hi, Neg: n.Neg}, nil
	case *CaseExpr:
		whens := make([]CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			c, err := rw.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			t, err := rw.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			whens[i] = CaseWhen{Cond: c, Then: t}
		}
		var els Expr
		if n.Else != nil {
			re, err := rw.rewrite(n.Else)
			if err != nil {
				return nil, err
			}
			els = re
		}
		return &CaseExpr{Whens: whens, Else: els}, nil
	default:
		return nil, fmt.Errorf("sqldb: unsupported expression %T in aggregate query", e)
	}
}

// funcArgColumns accumulates the base-table columns referenced by an
// aggregate call's arguments.
func funcArgColumns(f *FuncExpr, schema *Schema, into []int) ([]int, error) {
	var err error
	for _, a := range f.Args {
		into, err = referencedColumns(a, schema, into)
		if err != nil {
			return nil, err
		}
	}
	return into, nil
}

// compileOrderKey resolves one ORDER BY entry. Ordinals (ORDER BY 2) and
// alias references resolve to output columns; anything else compiles via
// the provided expression compiler.
func compileOrderKey(o OrderItem, items []SelectItem, compile func(Expr) (evalFn, error)) (orderKey, error) {
	key := orderKey{outCol: -1, desc: o.Desc}
	if lit, ok := o.Expr.(*LiteralExpr); ok && lit.Val.Kind == KindInt {
		n := int(lit.Val.I)
		if n < 1 || n > len(items) {
			return key, fmt.Errorf("sqldb: ORDER BY ordinal %d out of range", n)
		}
		key.outCol = n - 1
		return key, nil
	}
	if c, ok := o.Expr.(*ColumnExpr); ok {
		for i, it := range items {
			if it.Alias != "" && strings.EqualFold(it.Alias, c.Name) {
				key.outCol = i
				return key, nil
			}
		}
	}
	// Exact textual match with a select item also maps to its output.
	s := o.Expr.String()
	for i, it := range items {
		if it.Expr.String() == s {
			key.outCol = i
			return key, nil
		}
	}
	f, err := compile(o.Expr)
	if err != nil {
		return key, err
	}
	key.eval = f
	return key, nil
}

// groupEntry is one hash-aggregation bucket.
type groupEntry struct {
	keys   []Value
	states []aggState
}

// execute runs the plan over the configured row range.
func (p *plan) execute(opts ExecOptions) (*Result, error) {
	lo, hi := opts.Lo, opts.Hi
	if hi <= 0 {
		hi = p.table.NumRows()
	}
	res := &Result{Columns: p.colNames}
	res.Stats.Workers = 1

	if p.grouped {
		if err := p.executeGrouped(opts, lo, hi, res); err != nil {
			return nil, err
		}
	} else {
		res.Stats.FallbackReason = fallbackNonGrouped
		if err := p.executeSimple(opts, lo, hi, res); err != nil {
			return nil, err
		}
	}

	p.postProcess(res)
	return res, nil
}

// postProcess applies the row-level tail of every execution — ORDER BY,
// DISTINCT, OFFSET, LIMIT — shared by the single-store executors and the
// shard merge (shardexec.go).
func (p *plan) postProcess(res *Result) {
	p.sortRows(res)
	if p.distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	if p.offset > 0 {
		if p.offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[p.offset:]
		}
	}
	if p.limit >= 0 && len(res.Rows) > p.limit {
		res.Rows = res.Rows[:p.limit]
	}
}

// dedupeRows removes duplicate rows, keeping first occurrences (SELECT
// DISTINCT). NULLs compare equal for de-duplication, per SQL.
func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var key []byte
	for _, row := range rows {
		key = key[:0]
		for _, v := range row {
			key = v.appendKey(key)
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, row)
		}
	}
	return out
}

// executeSimple runs a projection-only scan.
func (p *plan) executeSimple(opts ExecOptions, lo, hi int, res *Result) error {
	_, sp := telemetry.StartSpan(opts.Ctx, "sqldb.scan")
	defer sp.End()
	n := 0
	scan := func(row RowView) error {
		n++
		if n%checkEvery == 0 && opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return err
			}
		}
		if p.filter != nil && !p.filter(row).Truthy() {
			return nil
		}
		out := make([]Value, len(p.outputs))
		for i, f := range p.outputs {
			out[i] = f(row)
		}
		// Inline order keys are appended and stripped after sorting.
		for _, k := range p.orderBy {
			if k.eval != nil {
				out = append(out, k.eval(row))
			}
		}
		res.Rows = append(res.Rows, out)
		return nil
	}
	err := p.table.ScanRange(lo, hi, p.scanCols, scan)
	res.Stats.RowsScanned = n
	return err
}

// executeGrouped runs hash aggregation: the scan/accumulate stage (serial
// interpreter or parallel vectorized fast path) followed by the shared
// finalize stage (HAVING, outputs, order keys).
func (p *plan) executeGrouped(opts ExecOptions, lo, hi int, res *Result) error {
	_, ssp := telemetry.StartSpan(opts.Ctx, "sqldb.scan")
	entries, err := p.aggregateRange(opts, lo, hi, &res.Stats)
	ssp.SetAttr("rows", strconv.Itoa(res.Stats.RowsScanned))
	ssp.SetAttr("workers", strconv.Itoa(res.Stats.Workers))
	ssp.End()
	if err != nil {
		return err
	}
	_, fsp := telemetry.StartSpan(opts.Ctx, "sqldb.finalize")
	p.finalizeGroups(entries, res)
	fsp.End()
	return nil
}

// finalizeGroups runs the executor-independent finalize stage over
// accumulated group entries: HAVING, output expressions and inline order
// keys. It is shared by the scan executors (serial interpreter, parallel
// vectorized fast path) and the shard merge, so finalize semantics cannot
// drift between single-store and fanned-out execution.
func (p *plan) finalizeGroups(entries []*groupEntry, res *Result) {
	// Global aggregation with no groups still emits one row.
	if len(p.groupKeys) == 0 && len(entries) == 0 {
		entries = append(entries, &groupEntry{states: make([]aggState, len(p.aggs))})
	}

	for _, g := range entries {
		gr := groupRow{keys: g.keys, aggs: make([]Value, len(p.aggs))}
		for i := range p.aggs {
			gr.aggs[i] = g.states[i].final(&p.aggs[i])
		}
		if p.having != nil && !p.having(gr).Truthy() {
			continue
		}
		out := make([]Value, len(p.outputs))
		for i, f := range p.outputs {
			out[i] = f(gr)
		}
		for _, key := range p.orderBy {
			if key.eval != nil {
				out = append(out, key.eval(gr))
			}
		}
		res.Rows = append(res.Rows, out)
	}
}

// aggregateRange produces the group entries for [lo, hi) in deterministic
// first-seen order, dispatching to the parallel vectorized fast path when
// the caller asked for intra-query parallelism and the plan and table
// support it, and to the serial row interpreter otherwise. When the
// interpreter runs, stats.FallbackReason records why.
func (p *plan) aggregateRange(opts ExecOptions, lo, hi int, stats *ExecStats) ([]*groupEntry, error) {
	switch {
	case opts.Workers <= 1:
		stats.FallbackReason = fallbackSerialExec
	case p.vec == nil:
		stats.FallbackReason = p.vecReason
	default:
		t, ok := p.table.(*ColStore)
		if !ok {
			stats.FallbackReason = fallbackRowStore
			break
		}
		run, ran, err := p.vec.run(p, t, opts, lo, hi)
		if err != nil {
			return nil, err
		}
		if !ran {
			stats.FallbackReason = fallbackIDSpace
			break
		}
		stats.RowsScanned = run.scanned
		stats.Groups = len(run.entries)
		stats.Vectorized = true
		stats.Workers = run.workers
		stats.SelectionKernels = run.kernels
		stats.ResidualPredicates = run.residuals
		return run.entries, nil
	}
	return p.aggregateSerial(opts, lo, hi, stats)
}

// aggregateSerial is the row-at-a-time hash aggregation interpreter.
func (p *plan) aggregateSerial(opts ExecOptions, lo, hi int, stats *ExecStats) ([]*groupEntry, error) {
	groups := make(map[string]*groupEntry)
	var entries []*groupEntry // deterministic first-seen order
	keyBuf := make([]byte, 0, 64)
	scratch := make([]Value, len(p.groupKeys))
	n := 0

	scan := func(row RowView) error {
		n++
		if n%checkEvery == 0 && opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return err
			}
		}
		if p.filter != nil && !p.filter(row).Truthy() {
			return nil
		}
		keyBuf = keyBuf[:0]
		for i, kf := range p.groupKeys {
			scratch[i] = kf(row)
			keyBuf = scratch[i].appendKey(keyBuf)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			keys := make([]Value, len(scratch))
			copy(keys, scratch)
			g = &groupEntry{keys: keys, states: make([]aggState, len(p.aggs))}
			groups[string(keyBuf)] = g
			entries = append(entries, g)
		}
		for i := range p.aggs {
			g.states[i].update(&p.aggs[i], row)
		}
		return nil
	}
	if err := p.table.ScanRange(lo, hi, p.scanCols, scan); err != nil {
		return nil, err
	}
	stats.RowsScanned = n
	stats.Groups = len(groups)
	return entries, nil
}

// sortRows applies ORDER BY and strips any inline order-key columns.
func (p *plan) sortRows(res *Result) {
	if len(p.orderBy) == 0 {
		return
	}
	// Positions of each order key within the (possibly extended) row.
	pos := make([]int, len(p.orderBy))
	extra := 0
	for i, k := range p.orderBy {
		if k.outCol >= 0 {
			pos[i] = k.outCol
		} else {
			pos[i] = len(p.outputs) + extra
			extra++
		}
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		ra, rb := res.Rows[a], res.Rows[b]
		for i, k := range p.orderBy {
			c := ra[pos[i]].Compare(rb[pos[i]])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if extra > 0 {
		for i := range res.Rows {
			res.Rows[i] = res.Rows[i][:len(p.outputs)]
		}
	}
}
