package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// testSchema is the schema used across executor tests: a tiny census-like
// table with one string dimension, one int dimension and two measures.
func testSchema() *Schema {
	return MustSchema(
		Column{Name: "sex", Type: TypeString},
		Column{Name: "region", Type: TypeInt},
		Column{Name: "income", Type: TypeFloat},
		Column{Name: "hours", Type: TypeInt},
	)
}

// testRows is a small fixed dataset with known aggregates.
func testRows() [][]Value {
	return [][]Value{
		{Str("F"), Int(1), Float(10), Int(40)},
		{Str("F"), Int(2), Float(20), Int(35)},
		{Str("M"), Int(1), Float(30), Int(45)},
		{Str("M"), Int(2), Float(40), Int(50)},
		{Str("M"), Int(1), Float(50), Int(20)},
		{Str("F"), Int(1), Null(), Int(30)},
	}
}

// buildDB loads the fixed dataset into a table of the given layout.
func buildDB(t *testing.T, layout Layout) *DB {
	t.Helper()
	db := NewDB()
	tab, err := db.CreateTable("census", testSchema(), layout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRows() {
		if err := tab.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// bothLayouts runs a subtest against a DB of each layout.
func bothLayouts(t *testing.T, fn func(t *testing.T, db *DB)) {
	t.Helper()
	for _, layout := range []Layout{LayoutRow, LayoutCol} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			fn(t, buildDB(t, layout))
		})
	}
}

func queryRows(t *testing.T, db *DB, sql string) [][]Value {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res.Rows
}

func TestSimpleProjection(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT sex, income FROM census")
		if len(rows) != 6 {
			t.Fatalf("got %d rows, want 6", len(rows))
		}
		if rows[0][0].S != "F" || rows[0][1].F != 10 {
			t.Errorf("row 0 = %v", rows[0])
		}
	})
}

func TestSelectStarExpansion(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		res, err := db.Query("SELECT * FROM census LIMIT 2")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"sex", "region", "income", "hours"}
		if !reflect.DeepEqual(res.Columns, want) {
			t.Errorf("columns = %v, want %v", res.Columns, want)
		}
		if len(res.Rows) != 2 {
			t.Errorf("rows = %d, want 2", len(res.Rows))
		}
	})
}

func TestWhereFilter(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT hours FROM census WHERE sex = 'M' AND region = 1")
		if len(rows) != 2 {
			t.Fatalf("got %d rows, want 2", len(rows))
		}
	})
}

func TestWhereNullNeverPasses(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		// income = NULL on one row; comparisons with NULL are NULL → filtered.
		rows := queryRows(t, db, "SELECT sex FROM census WHERE income > 0")
		if len(rows) != 5 {
			t.Fatalf("got %d rows, want 5 (NULL row excluded)", len(rows))
		}
		rows = queryRows(t, db, "SELECT sex FROM census WHERE income IS NULL")
		if len(rows) != 1 {
			t.Fatalf("IS NULL got %d rows, want 1", len(rows))
		}
	})
}

func TestGroupByAverages(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT sex, AVG(income) FROM census GROUP BY sex ORDER BY sex")
		if len(rows) != 2 {
			t.Fatalf("got %d groups, want 2", len(rows))
		}
		// F: (10+20)/2 = 15 (NULL skipped); M: (30+40+50)/3 = 40.
		if rows[0][0].S != "F" || rows[0][1].F != 15 {
			t.Errorf("F avg = %v", rows[0])
		}
		if rows[1][0].S != "M" || rows[1][1].F != 40 {
			t.Errorf("M avg = %v", rows[1])
		}
	})
}

func TestGroupByMultipleAggregates(t *testing.T) {
	// The "Combine Multiple Aggregates" sharing optimization relies on
	// many aggregates per query returning correct independent results.
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, `SELECT sex, COUNT(*), SUM(income), MIN(hours), MAX(hours), AVG(hours)
			FROM census GROUP BY sex ORDER BY sex`)
		f := rows[0]
		if f[1].I != 3 || f[2].F != 30 || f[3].I != 30 || f[4].I != 40 || f[5].F != 35 {
			t.Errorf("F row = %v", f)
		}
		m := rows[1]
		if m[1].I != 3 || m[2].F != 120 || m[3].I != 20 || m[4].I != 50 {
			t.Errorf("M row = %v", m)
		}
	})
}

func TestGlobalAggregateNoGroups(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT COUNT(*), AVG(income) FROM census")
		if len(rows) != 1 || rows[0][0].I != 6 || rows[0][1].F != 30 {
			t.Errorf("global agg = %v", rows)
		}
	})
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT COUNT(*), SUM(income) FROM census WHERE region = 99")
		if len(rows) != 1 {
			t.Fatalf("global aggregate over empty input must emit one row, got %d", len(rows))
		}
		if rows[0][0].I != 0 || !rows[0][1].IsNull() {
			t.Errorf("empty agg = %v, want [0 NULL]", rows[0])
		}
	})
}

func TestGroupByCaseExpression(t *testing.T) {
	// This is the combined target/reference rewrite from Section 4.1.
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, `SELECT sex, CASE WHEN region = 1 THEN 1 ELSE 0 END AS grp, AVG(income)
			FROM census GROUP BY sex, CASE WHEN region = 1 THEN 1 ELSE 0 END ORDER BY sex, grp`)
		if len(rows) != 4 {
			t.Fatalf("got %d groups, want 4: %v", len(rows), rows)
		}
		// F/grp=0: avg 20; F/grp=1: avg 10; M/grp=0: 40; M/grp=1: 40.
		checks := []struct {
			sex string
			grp int64
			avg float64
		}{
			{"F", 0, 20}, {"F", 1, 10}, {"M", 0, 40}, {"M", 1, 40},
		}
		for i, c := range checks {
			if rows[i][0].S != c.sex || rows[i][1].I != c.grp || rows[i][2].F != c.avg {
				t.Errorf("row %d = %v, want %+v", i, rows[i], c)
			}
		}
	})
}

func TestCountDistinct(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT COUNT(DISTINCT region), COUNT(DISTINCT sex) FROM census")
		if rows[0][0].I != 2 || rows[0][1].I != 2 {
			t.Errorf("distinct counts = %v", rows[0])
		}
	})
}

func TestOrderByDescAndLimit(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT hours FROM census ORDER BY hours DESC LIMIT 3")
		want := []int64{50, 45, 40}
		for i, w := range want {
			if rows[i][0].I != w {
				t.Errorf("row %d = %v, want %d", i, rows[i][0], w)
			}
		}
	})
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		r1 := queryRows(t, db, "SELECT sex, SUM(hours) AS total FROM census GROUP BY sex ORDER BY total DESC")
		r2 := queryRows(t, db, "SELECT sex, SUM(hours) AS total FROM census GROUP BY sex ORDER BY 2 DESC")
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("alias vs ordinal ordering differ: %v vs %v", r1, r2)
		}
		if r1[0][0].S != "M" {
			t.Errorf("M has more hours, got %v first", r1[0])
		}
	})
}

func TestOrderByNonSelectedExpression(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT sex FROM census WHERE income IS NOT NULL ORDER BY income DESC LIMIT 1")
		if rows[0][0].S != "M" {
			t.Errorf("top earner sex = %v, want M", rows[0][0])
		}
		// Order key must not leak into output.
		if len(rows[0]) != 1 {
			t.Errorf("row width = %d, want 1", len(rows[0]))
		}
	})
}

func TestRangeScanPartitions(t *testing.T) {
	// Partitioned execution: the union of partition results must equal
	// the full-scan result. This is the primitive behind phased execution.
	bothLayouts(t, func(t *testing.T, db *DB) {
		full, err := db.Query("SELECT sex, COUNT(*) FROM census GROUP BY sex")
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int64{}
		for _, lohi := range [][2]int{{0, 2}, {2, 4}, {4, 6}} {
			res, err := db.QueryRange("SELECT sex, COUNT(*) FROM census GROUP BY sex", lohi[0], lohi[1])
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Rows {
				counts[r[0].S] += r[1].I
			}
		}
		for _, r := range full.Rows {
			if counts[r[0].S] != r[1].I {
				t.Errorf("partition union %s = %d, full = %d", r[0].S, counts[r[0].S], r[1].I)
			}
		}
	})
}

func TestRangeScanClamping(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		res, err := db.QueryRange("SELECT COUNT(*) FROM census", 4, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != 2 {
			t.Errorf("clamped range count = %v, want 2", res.Rows[0][0])
		}
		res, err = db.QueryRange("SELECT COUNT(*) FROM census", -5, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != 2 {
			t.Errorf("negative-lo count = %v, want 2", res.Rows[0][0])
		}
	})
}

func TestExecStats(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		res, err := db.Query("SELECT sex, region, COUNT(*) FROM census GROUP BY sex, region")
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.RowsScanned != 6 {
			t.Errorf("RowsScanned = %d, want 6", res.Stats.RowsScanned)
		}
		if res.Stats.Groups != 4 {
			t.Errorf("Groups = %d, want 4", res.Stats.Groups)
		}
	})
}

func TestArithmeticAndScalarFunctions(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT hours * 2 + 1, ABS(0 - hours), UPPER(sex), LENGTH(sex) FROM census LIMIT 1")
		r := rows[0]
		if r[0].I != 81 || r[1].I != 40 || r[2].S != "F" || r[3].I != 1 {
			t.Errorf("row = %v", r)
		}
	})
}

func TestDivisionSemantics(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT hours / 0, hours % 7, COALESCE(income, -1) FROM census LIMIT 1")
		if !rows[0][0].IsNull() {
			t.Error("division by zero should yield NULL")
		}
		if rows[0][1].I != 40%7 {
			t.Errorf("modulo = %v", rows[0][1])
		}
	})
}

func TestHavingLikeExpressionOverAggregates(t *testing.T) {
	// Post-aggregation arithmetic over aggregate results.
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT sex, SUM(income) / COUNT(*) FROM census GROUP BY sex ORDER BY sex")
		// F: 30/3=10 (COUNT(*) counts the NULL row), M: 120/3=40.
		if rows[0][1].F != 10 || rows[1][1].F != 40 {
			t.Errorf("rows = %v", rows)
		}
	})
}

func TestAggregateQueryErrors(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		bad := []string{
			"SELECT sex, income FROM census GROUP BY sex",               // non-grouped column
			"SELECT sex, AVG(AVG(income)) FROM census GROUP BY sex",     // nested agg
			"SELECT sex FROM census WHERE AVG(income) > 1",              // agg in WHERE
			"SELECT sex, SUM(DISTINCT income) FROM census GROUP BY sex", // DISTINCT non-count
			"SELECT AVG(income, hours) FROM census",                     // arity
			"SELECT nosuch FROM census",                                 // unknown column
			"SELECT FOO(income) FROM census",                            // unknown function
			"SELECT a FROM nosuchtable",                                 // unknown table
			"SELECT sex, COUNT(*) FROM census GROUP BY AVG(income)",     // agg in GROUP BY
			"SELECT sex, COUNT(*) FROM census GROUP BY sex ORDER BY 5",  // ordinal range
		}
		for _, sql := range bad {
			if _, err := db.Query(sql); err == nil {
				t.Errorf("Query(%q) should fail", sql)
			}
		}
	})
}

func TestContextCancellation(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("big", MustSchema(Column{Name: "x", Type: TypeInt}), LayoutCol)
	for i := 0; i < 100000; i++ {
		if err := tab.AppendRow([]Value{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT SUM(x) FROM big"); err == nil {
		t.Error("cancelled query should fail")
	}
}

// naiveGroupAvg is an oracle: group-by a on column ai, average of column mi.
func naiveGroupAvg(rows [][]Value, ai, mi int) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, r := range rows {
		if r[mi].IsNull() {
			continue
		}
		k := r[ai].String()
		f, _ := r[mi].AsFloat()
		sums[k] += f
		counts[k]++
	}
	out := map[string]float64{}
	for k := range sums {
		out[k] = sums[k] / counts[k]
	}
	return out
}

func TestExecutorAgainstOracleRandomData(t *testing.T) {
	// Random data, both layouts, executor vs a naive reference.
	rng := rand.New(rand.NewSource(7))
	schema := MustSchema(
		Column{Name: "d1", Type: TypeString},
		Column{Name: "d2", Type: TypeInt},
		Column{Name: "m1", Type: TypeFloat},
	)
	var raw [][]Value
	for i := 0; i < 2000; i++ {
		raw = append(raw, []Value{
			Str(fmt.Sprintf("g%d", rng.Intn(7))),
			Int(int64(rng.Intn(4))),
			Float(rng.Float64() * 100),
		})
	}
	for _, layout := range []Layout{LayoutRow, LayoutCol} {
		db := NewDB()
		tab, _ := db.CreateTable("t", schema, layout)
		for _, r := range raw {
			if err := tab.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		res, err := db.Query("SELECT d1, AVG(m1) FROM t GROUP BY d1")
		if err != nil {
			t.Fatal(err)
		}
		oracle := naiveGroupAvg(raw, 0, 2)
		if len(res.Rows) != len(oracle) {
			t.Fatalf("[%v] %d groups, oracle %d", layout, len(res.Rows), len(oracle))
		}
		for _, r := range res.Rows {
			want := oracle[r[0].S]
			if diff := r[1].F - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("[%v] group %s avg = %v, oracle %v", layout, r[0].S, r[1].F, want)
			}
		}
	}
}

func TestRowAndColStoresAgree(t *testing.T) {
	// Property: both physical layouts return identical (sorted) results
	// for the same logical query over the same logical data.
	rng := rand.New(rand.NewSource(11))
	schema := MustSchema(
		Column{Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeString},
		Column{Name: "m", Type: TypeFloat},
	)
	queries := []string{
		"SELECT a, COUNT(*) FROM t GROUP BY a",
		"SELECT b, SUM(m), MIN(m), MAX(m) FROM t GROUP BY b",
		"SELECT a, b, AVG(m) FROM t WHERE m > 50 GROUP BY a, b",
		"SELECT COUNT(*) FROM t WHERE b = 'x1' OR a IN (0, 2)",
		"SELECT a, CASE WHEN m > 50 THEN 'hi' ELSE 'lo' END AS band, COUNT(*) FROM t GROUP BY a, CASE WHEN m > 50 THEN 'hi' ELSE 'lo' END",
	}
	for trial := 0; trial < 5; trial++ {
		dbRow, dbCol := NewDB(), NewDB()
		tr, _ := dbRow.CreateTable("t", schema, LayoutRow)
		tc, _ := dbCol.CreateTable("t", schema, LayoutCol)
		n := 200 + rng.Intn(400)
		for i := 0; i < n; i++ {
			row := []Value{
				Int(int64(rng.Intn(5))),
				Str(fmt.Sprintf("x%d", rng.Intn(3))),
				Float(float64(rng.Intn(1000)) / 10),
			}
			if err := tr.AppendRow(row); err != nil {
				t.Fatal(err)
			}
			if err := tc.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		for _, sql := range queries {
			r1, err := dbRow.Query(sql)
			if err != nil {
				t.Fatalf("ROW %q: %v", sql, err)
			}
			r2, err := dbCol.Query(sql)
			if err != nil {
				t.Fatalf("COL %q: %v", sql, err)
			}
			if !sameRowSet(r1.Rows, r2.Rows) {
				t.Errorf("trial %d: layouts disagree on %q:\nROW: %v\nCOL: %v", trial, sql, r1.Rows, r2.Rows)
			}
		}
	}
}

// sameRowSet compares two result sets ignoring row order.
func sameRowSet(a, b [][]Value) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r []Value) string {
		s := ""
		for _, v := range r {
			s += "|" + fmt.Sprintf("%v:%s", v.Kind, v.String())
		}
		return s
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

func TestPreparedQueryReuse(t *testing.T) {
	db := buildDB(t, LayoutCol)
	q, err := db.Prepare("SELECT sex, COUNT(*) FROM census GROUP BY sex")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := q.Exec(ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Exec(ExecOptions{Lo: 0, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 2 || r1.Stats.RowsScanned != 6 {
		t.Errorf("full exec wrong: %v", r1.Rows)
	}
	if r2.Stats.RowsScanned != 3 {
		t.Errorf("partial exec scanned %d, want 3", r2.Stats.RowsScanned)
	}
}
