package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// evalFn is a compiled scalar expression, evaluated against one row.
type evalFn func(row RowView) Value

// aggFuncs lists the aggregate function names the planner recognizes.
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether e contains an aggregate function call.
func IsAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(n Expr) {
		if f, ok := n.(*FuncExpr); ok && aggFuncs[f.Name] {
			found = true
		}
	})
	return found
}

// walkExpr visits e and all sub-expressions in preorder.
func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *UnaryExpr:
		walkExpr(n.X, visit)
	case *BinaryExpr:
		walkExpr(n.L, visit)
		walkExpr(n.R, visit)
	case *InExpr:
		walkExpr(n.X, visit)
		for _, x := range n.List {
			walkExpr(x, visit)
		}
	case *IsNullExpr:
		walkExpr(n.X, visit)
	case *BetweenExpr:
		walkExpr(n.X, visit)
		walkExpr(n.Lo, visit)
		walkExpr(n.Hi, visit)
	case *CaseExpr:
		for _, w := range n.Whens {
			walkExpr(w.Cond, visit)
			walkExpr(w.Then, visit)
		}
		walkExpr(n.Else, visit)
	case *FuncExpr:
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	}
}

// referencedColumns returns the schema indices of all columns referenced
// by e, deduplicated, in first-reference order.
func referencedColumns(e Expr, schema *Schema, into []int) ([]int, error) {
	seen := make(map[int]bool)
	for _, c := range into {
		seen[c] = true
	}
	var err error
	walkExpr(e, func(n Expr) {
		if err != nil {
			return
		}
		if c, ok := n.(*ColumnExpr); ok && c.Name != "*" {
			idx, found := schema.Lookup(c.Name)
			if !found {
				err = fmt.Errorf("sqldb: unknown column %q", c.Name)
				return
			}
			if !seen[idx] {
				seen[idx] = true
				into = append(into, idx)
			}
		}
	})
	return into, err
}

// compileScalar compiles e into an evalFn over the table schema.
// Aggregate function calls are rejected — the planner must rewrite them
// first.
func compileScalar(e Expr, schema *Schema) (evalFn, error) {
	switch n := e.(type) {
	case *LiteralExpr:
		v := n.Val
		return func(RowView) Value { return v }, nil
	case *ColumnExpr:
		idx, ok := schema.Lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("sqldb: unknown column %q", n.Name)
		}
		return func(row RowView) Value { return row.Value(idx) }, nil
	case *UnaryExpr:
		x, err := compileScalar(n.X, schema)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			return func(row RowView) Value { return notValue(x(row)) }, nil
		}
		return func(row RowView) Value { return negValue(x(row)) }, nil
	case *BinaryExpr:
		l, err := compileScalar(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileScalar(n.R, schema)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(row RowView) Value { return binaryOp(op, l(row), r(row)) }, nil
	case *InExpr:
		x, err := compileScalar(n.X, schema)
		if err != nil {
			return nil, err
		}
		list := make([]evalFn, len(n.List))
		for i, le := range n.List {
			f, err := compileScalar(le, schema)
			if err != nil {
				return nil, err
			}
			list[i] = f
		}
		neg := n.Neg
		return func(row RowView) Value {
			v := x(row)
			if v.IsNull() {
				return Null()
			}
			for _, f := range list {
				if v.Equal(f(row)) {
					return Bool(!neg)
				}
			}
			return Bool(neg)
		}, nil
	case *IsNullExpr:
		x, err := compileScalar(n.X, schema)
		if err != nil {
			return nil, err
		}
		neg := n.Neg
		return func(row RowView) Value { return Bool(x(row).IsNull() != neg) }, nil
	case *BetweenExpr:
		x, err := compileScalar(n.X, schema)
		if err != nil {
			return nil, err
		}
		lo, err := compileScalar(n.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := compileScalar(n.Hi, schema)
		if err != nil {
			return nil, err
		}
		neg := n.Neg
		return func(row RowView) Value {
			v := x(row)
			lv, hv := lo(row), hi(row)
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return Null()
			}
			in := v.Compare(lv) >= 0 && v.Compare(hv) <= 0
			return Bool(in != neg)
		}, nil
	case *CaseExpr:
		type arm struct{ cond, then evalFn }
		arms := make([]arm, len(n.Whens))
		for i, w := range n.Whens {
			c, err := compileScalar(w.Cond, schema)
			if err != nil {
				return nil, err
			}
			t, err := compileScalar(w.Then, schema)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{c, t}
		}
		var elseFn evalFn
		if n.Else != nil {
			f, err := compileScalar(n.Else, schema)
			if err != nil {
				return nil, err
			}
			elseFn = f
		}
		return func(row RowView) Value {
			for _, a := range arms {
				if a.cond(row).Truthy() {
					return a.then(row)
				}
			}
			if elseFn != nil {
				return elseFn(row)
			}
			return Null()
		}, nil
	case *FuncExpr:
		if aggFuncs[n.Name] {
			return nil, fmt.Errorf("sqldb: aggregate %s not allowed in this context", n.Name)
		}
		return compileScalarFunc(n, schema)
	default:
		return nil, fmt.Errorf("sqldb: unsupported expression %T", e)
	}
}

// compileScalarFunc compiles non-aggregate built-in functions.
func compileScalarFunc(n *FuncExpr, schema *Schema) (evalFn, error) {
	args := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		f, err := compileScalar(a, schema)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	arity := func(want int) error {
		if len(args) != want {
			return fmt.Errorf("sqldb: %s expects %d argument(s), got %d", n.Name, want, len(args))
		}
		return nil
	}
	switch n.Name {
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			v := args[0](row)
			switch v.Kind {
			case KindInt:
				if v.I < 0 {
					return Int(-v.I)
				}
				return v
			case KindFloat:
				return Float(math.Abs(v.F))
			default:
				return Null()
			}
		}, nil
	case "ROUND":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			if f, ok := args[0](row).AsFloat(); ok {
				return Float(math.Round(f))
			}
			return Null()
		}, nil
	case "FLOOR":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			if f, ok := args[0](row).AsFloat(); ok {
				return Float(math.Floor(f))
			}
			return Null()
		}, nil
	case "CEIL", "CEILING":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			if f, ok := args[0](row).AsFloat(); ok {
				return Float(math.Ceil(f))
			}
			return Null()
		}, nil
	case "LENGTH":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			v := args[0](row)
			if v.Kind != KindString {
				return Null()
			}
			return Int(int64(len(v.S)))
		}, nil
	case "UPPER":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			v := args[0](row)
			if v.Kind != KindString {
				return Null()
			}
			return Str(strings.ToUpper(v.S))
		}, nil
	case "LOWER":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(row RowView) Value {
			v := args[0](row)
			if v.Kind != KindString {
				return Null()
			}
			return Str(strings.ToLower(v.S))
		}, nil
	case "COALESCE":
		if len(args) == 0 {
			return nil, fmt.Errorf("sqldb: COALESCE requires at least one argument")
		}
		return func(row RowView) Value {
			for _, a := range args {
				if v := a(row); !v.IsNull() {
					return v
				}
			}
			return Null()
		}, nil
	default:
		return nil, fmt.Errorf("sqldb: unknown function %s", n.Name)
	}
}

// notValue implements three-valued NOT.
func notValue(v Value) Value {
	if v.IsNull() {
		return Null()
	}
	return Bool(!v.Truthy())
}

// negValue implements arithmetic negation.
func negValue(v Value) Value {
	switch v.Kind {
	case KindInt:
		return Int(-v.I)
	case KindFloat:
		return Float(-v.F)
	default:
		return Null()
	}
}

// binaryOp applies a binary operator with SQL NULL semantics: any NULL
// operand yields NULL, except AND/OR which use three-valued logic.
func binaryOp(op string, l, r Value) Value {
	switch op {
	case "AND":
		// FALSE AND x = FALSE even when x is NULL.
		lNull, rNull := l.IsNull(), r.IsNull()
		if !lNull && !l.Truthy() || !rNull && !r.Truthy() {
			return Bool(false)
		}
		if lNull || rNull {
			return Null()
		}
		return Bool(true)
	case "OR":
		lNull, rNull := l.IsNull(), r.IsNull()
		if !lNull && l.Truthy() || !rNull && r.Truthy() {
			return Bool(true)
		}
		if lNull || rNull {
			return Null()
		}
		return Bool(false)
	}
	if l.IsNull() || r.IsNull() {
		return Null()
	}
	switch op {
	case "=":
		return Bool(l.Equal(r))
	case "!=":
		return Bool(!l.Equal(r))
	case "<":
		return Bool(comparable2(l, r) && l.Compare(r) < 0)
	case "<=":
		return Bool(comparable2(l, r) && l.Compare(r) <= 0)
	case ">":
		return Bool(comparable2(l, r) && l.Compare(r) > 0)
	case ">=":
		return Bool(comparable2(l, r) && l.Compare(r) >= 0)
	case "||":
		if l.Kind == KindString && r.Kind == KindString {
			return Str(l.S + r.S)
		}
		return Str(l.String() + r.String())
	case "+", "-", "*":
		if l.Kind == KindInt && r.Kind == KindInt {
			switch op {
			case "+":
				return Int(l.I + r.I)
			case "-":
				return Int(l.I - r.I)
			default:
				return Int(l.I * r.I)
			}
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Null()
		}
		switch op {
		case "+":
			return Float(lf + rf)
		case "-":
			return Float(lf - rf)
		default:
			return Float(lf * rf)
		}
	case "/":
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok || rf == 0 {
			return Null()
		}
		return Float(lf / rf)
	case "%":
		li, lok := l.AsInt()
		ri, rok := r.AsInt()
		if !lok || !rok || ri == 0 {
			return Null()
		}
		return Int(li % ri)
	}
	return Null()
}

// comparable2 reports whether two values can be ordered (both strings or
// both numeric).
func comparable2(l, r Value) bool {
	if l.Kind == KindString || r.Kind == KindString {
		return l.Kind == KindString && r.Kind == KindString
	}
	return true
}
