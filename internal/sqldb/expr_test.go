package sqldb

import (
	"testing"
)

// evalExpr compiles and evaluates a standalone expression against a
// single-row table context.
func evalExpr(t *testing.T, exprSQL string, row []Value, schema *Schema) Value {
	t.Helper()
	stmt, err := Parse("SELECT " + exprSQL + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", exprSQL, err)
	}
	fn, err := compileScalar(stmt.Items[0].Expr, schema)
	if err != nil {
		t.Fatalf("compile %q: %v", exprSQL, err)
	}
	return fn(rowSlice(row))
}

func exprSchema() *Schema {
	return MustSchema(
		Column{Name: "x", Type: TypeInt},
		Column{Name: "y", Type: TypeFloat},
		Column{Name: "s", Type: TypeString},
		Column{Name: "n", Type: TypeFloat}, // will hold NULL
	)
}

func exprRow() []Value {
	return []Value{Int(6), Float(2.5), Str("abc"), Null()}
}

func TestThreeValuedLogic(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	cases := []struct {
		sql  string
		want Value
	}{
		// NULL propagation through comparisons.
		{"n = 1", Null()},
		{"n != 1", Null()},
		{"n < 1", Null()},
		// Kleene logic: FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
		{"x = 0 AND n = 1", Bool(false)},
		{"x = 6 OR n = 1", Bool(true)},
		{"x = 6 AND n = 1", Null()},
		{"x = 0 OR n = 1", Null()},
		{"NOT (n = 1)", Null()},
		// IS NULL is never NULL.
		{"n IS NULL", Bool(true)},
		{"n IS NOT NULL", Bool(false)},
		{"x IS NULL", Bool(false)},
	}
	for _, c := range cases {
		got := evalExpr(t, c.sql, row, schema)
		if got.Kind != c.want.Kind || (got.Kind != KindNull && !got.Equal(c.want) && got.I != c.want.I) {
			t.Errorf("%s = %v (%v), want %v (%v)", c.sql, got, got.Kind, c.want, c.want.Kind)
		}
	}
}

func TestArithmeticTypePromotion(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	cases := []struct {
		sql  string
		kind ValueKind
		f    float64
	}{
		{"x + 1", KindInt, 7},
		{"x * 2", KindInt, 12},
		{"x - 10", KindInt, -4},
		{"x + y", KindFloat, 8.5},
		{"x / 4", KindFloat, 1.5}, // division is always float
		{"y * y", KindFloat, 6.25},
		{"x % 4", KindInt, 2},
	}
	for _, c := range cases {
		got := evalExpr(t, c.sql, row, schema)
		if got.Kind != c.kind {
			t.Errorf("%s kind = %v, want %v", c.sql, got.Kind, c.kind)
		}
		f, _ := got.AsFloat()
		if f != c.f {
			t.Errorf("%s = %v, want %v", c.sql, f, c.f)
		}
	}
}

func TestNullArithmetic(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	for _, sql := range []string{"n + 1", "1 + n", "n * 0", "n / 2", "n % 2", "-n"} {
		if got := evalExpr(t, sql, row, schema); !got.IsNull() {
			t.Errorf("%s = %v, want NULL", sql, got)
		}
	}
}

func TestStringOperations(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	if got := evalExpr(t, "s || 'def'", row, schema); got.S != "abcdef" {
		t.Errorf("concat = %q", got.S)
	}
	if got := evalExpr(t, "UPPER(s)", row, schema); got.S != "ABC" {
		t.Errorf("upper = %q", got.S)
	}
	if got := evalExpr(t, "LOWER('XYZ')", row, schema); got.S != "xyz" {
		t.Errorf("lower = %q", got.S)
	}
	if got := evalExpr(t, "LENGTH(s)", row, schema); got.I != 3 {
		t.Errorf("length = %v", got)
	}
	// Mixed concat stringifies.
	if got := evalExpr(t, "s || x", row, schema); got.S != "abc6" {
		t.Errorf("mixed concat = %q", got.S)
	}
	// String comparisons.
	if got := evalExpr(t, "s < 'abd'", row, schema); !got.Truthy() {
		t.Error("string less-than failed")
	}
	// Cross-type ordering comparisons are false, not errors.
	if got := evalExpr(t, "s > 1", row, schema); got.Truthy() {
		t.Error("string > int should be false")
	}
}

func TestCaseExpressionForms(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	if got := evalExpr(t, "CASE WHEN x > 5 THEN 'big' ELSE 'small' END", row, schema); got.S != "big" {
		t.Errorf("case = %v", got)
	}
	if got := evalExpr(t, "CASE WHEN x > 100 THEN 1 END", row, schema); !got.IsNull() {
		t.Errorf("case without else should be NULL, got %v", got)
	}
	// Multiple arms, first match wins.
	got := evalExpr(t, "CASE WHEN x > 0 THEN 'a' WHEN x > 5 THEN 'b' END", row, schema)
	if got.S != "a" {
		t.Errorf("first arm should win, got %v", got)
	}
	// NULL condition falls through.
	got = evalExpr(t, "CASE WHEN n = 1 THEN 'x' ELSE 'fell' END", row, schema)
	if got.S != "fell" {
		t.Errorf("NULL condition should fall through, got %v", got)
	}
}

func TestBetweenAndIn(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	cases := []struct {
		sql  string
		want bool
	}{
		{"x BETWEEN 5 AND 7", true},
		{"x BETWEEN 6 AND 6", true},
		{"x NOT BETWEEN 5 AND 7", false},
		{"x BETWEEN 7 AND 9", false},
		{"x IN (1, 6, 9)", true},
		{"x NOT IN (1, 6, 9)", false},
		{"x IN (1, 2)", false},
		{"s IN ('abc', 'z')", true},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.sql, row, schema); got.Truthy() != c.want {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
	// NULL member semantics.
	if got := evalExpr(t, "n IN (1, 2)", row, schema); !got.IsNull() {
		t.Errorf("NULL IN list = %v, want NULL", got)
	}
	if got := evalExpr(t, "n BETWEEN 1 AND 2", row, schema); !got.IsNull() {
		t.Errorf("NULL BETWEEN = %v, want NULL", got)
	}
}

func TestScalarMathFunctions(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	cases := []struct {
		sql  string
		want float64
	}{
		{"ABS(0 - x)", 6},
		{"ABS(y)", 2.5},
		{"ROUND(y)", 3}, // rounds half away from zero (math.Round)
		{"FLOOR(y)", 2},
		{"CEIL(y)", 3},
		{"CEILING(y)", 3},
		{"COALESCE(n, y)", 2.5},
	}
	for _, c := range cases {
		got := evalExpr(t, c.sql, row, schema)
		f, ok := got.AsFloat()
		if !ok || f != c.want {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
	// Type mismatches yield NULL, not errors.
	for _, sql := range []string{"ABS(s)", "ROUND(s)", "LENGTH(x)", "UPPER(x)"} {
		if got := evalExpr(t, sql, row, schema); !got.IsNull() {
			t.Errorf("%s = %v, want NULL", sql, got)
		}
	}
}

func TestScalarFunctionArityErrors(t *testing.T) {
	schema := exprSchema()
	bad := []string{"ABS(x, y)", "ABS()", "ROUND(x, 2)", "COALESCE()", "LENGTH(s, s)"}
	for _, sql := range bad {
		stmt, err := Parse("SELECT " + sql + " FROM t")
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := compileScalar(stmt.Items[0].Expr, schema); err == nil {
			t.Errorf("compile %q should fail", sql)
		}
	}
}

func TestIsAggregateDetection(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"x + 1", false},
		{"AVG(x)", true},
		{"1 + SUM(x) / COUNT(*)", true},
		{"CASE WHEN x > 0 THEN MAX(y) ELSE 0 END", true},
		{"ABS(x)", false},
		{"x IN (1, 2)", false},
	}
	for _, c := range cases {
		stmt, err := Parse("SELECT " + c.sql + " FROM t")
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		if got := IsAggregate(stmt.Items[0].Expr); got != c.want {
			t.Errorf("IsAggregate(%s) = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestReferencedColumnsDedup(t *testing.T) {
	schema := exprSchema()
	stmt, err := Parse("SELECT x + x + y FROM t WHERE x > 0")
	if err != nil {
		t.Fatal(err)
	}
	cols, err := referencedColumns(stmt.Items[0].Expr, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Errorf("cols = %v, want [0 1]", cols)
	}
	// Accumulation into an existing list dedups across calls.
	cols, err = referencedColumns(stmt.Where, schema, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Errorf("accumulated cols = %v, want still [0 1]", cols)
	}
}

func TestUnknownColumnError(t *testing.T) {
	schema := exprSchema()
	stmt, err := Parse("SELECT zz FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compileScalar(stmt.Items[0].Expr, schema); err == nil {
		t.Error("unknown column should fail to compile")
	}
	if _, err := referencedColumns(stmt.Items[0].Expr, schema, nil); err == nil {
		t.Error("referencedColumns should fail on unknown column")
	}
}

func TestDivideByZeroAndModZero(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	if got := evalExpr(t, "x / 0", row, schema); !got.IsNull() {
		t.Errorf("x/0 = %v, want NULL", got)
	}
	if got := evalExpr(t, "x % 0", row, schema); !got.IsNull() {
		t.Errorf("x%%0 = %v, want NULL", got)
	}
	if got := evalExpr(t, "x / 0.0", row, schema); !got.IsNull() {
		t.Errorf("x/0.0 = %v, want NULL", got)
	}
}

func TestNegationForms(t *testing.T) {
	schema, row := exprSchema(), exprRow()
	if got := evalExpr(t, "-x", row, schema); got.I != -6 {
		t.Errorf("-x = %v", got)
	}
	if got := evalExpr(t, "-y", row, schema); got.F != -2.5 {
		t.Errorf("-y = %v", got)
	}
	if got := evalExpr(t, "-s", row, schema); !got.IsNull() {
		t.Errorf("-s = %v, want NULL", got)
	}
	if got := evalExpr(t, "+x", row, schema); got.I != 6 {
		t.Errorf("+x = %v", got)
	}
}
