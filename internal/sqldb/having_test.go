package sqldb

import (
	"reflect"
	"testing"
)

func TestHavingFiltersGroups(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db,
			"SELECT sex, COUNT(*) FROM census GROUP BY sex HAVING COUNT(*) > 2 ORDER BY sex")
		// Both sexes have 3 rows; raise the bar and only groups beyond it
		// remain.
		if len(rows) != 2 {
			t.Fatalf("HAVING >2: got %d groups, want 2", len(rows))
		}
		rows = queryRows(t, db,
			"SELECT region, COUNT(*) FROM census GROUP BY region HAVING COUNT(*) >= 4")
		// region 1 has 4 rows, region 2 has 2.
		if len(rows) != 1 || rows[0][0].I != 1 {
			t.Fatalf("HAVING >=4: got %v", rows)
		}
	})
}

func TestHavingOnAggregateNotInSelect(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db,
			"SELECT sex FROM census GROUP BY sex HAVING AVG(hours) > 36 ORDER BY sex")
		// F avg hours = 35, M avg hours ≈ 38.3.
		if len(rows) != 1 || rows[0][0].S != "M" {
			t.Fatalf("got %v, want [M]", rows)
		}
	})
}

func TestHavingWithGroupKeyReference(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db,
			"SELECT sex, COUNT(*) FROM census GROUP BY sex HAVING sex = 'F'")
		if len(rows) != 1 || rows[0][0].S != "F" {
			t.Fatalf("got %v", rows)
		}
	})
}

func TestHavingWithoutGroupByIsGlobal(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT COUNT(*) FROM census HAVING COUNT(*) > 100")
		if len(rows) != 0 {
			t.Fatalf("global HAVING false: got %v", rows)
		}
		rows = queryRows(t, db, "SELECT COUNT(*) FROM census HAVING COUNT(*) > 2")
		if len(rows) != 1 || rows[0][0].I != 6 {
			t.Fatalf("global HAVING true: got %v", rows)
		}
	})
}

func TestHavingErrors(t *testing.T) {
	db := buildDB(t, LayoutCol)
	// Non-grouped column reference inside HAVING.
	if _, err := db.Query("SELECT sex, COUNT(*) FROM census GROUP BY sex HAVING hours > 0"); err == nil {
		t.Error("HAVING referencing a non-grouped column should fail")
	}
}

func TestSelectDistinct(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, "SELECT DISTINCT sex FROM census ORDER BY sex")
		if len(rows) != 2 || rows[0][0].S != "F" || rows[1][0].S != "M" {
			t.Fatalf("distinct sex = %v", rows)
		}
		rows = queryRows(t, db, "SELECT DISTINCT sex, region FROM census")
		if len(rows) != 4 {
			t.Fatalf("distinct pairs = %d, want 4", len(rows))
		}
	})
}

func TestSelectDistinctWithNulls(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		// Two NULL incomes would collapse to one under DISTINCT.
		rows := queryRows(t, db, "SELECT DISTINCT income IS NULL FROM census")
		if len(rows) != 2 {
			t.Fatalf("distinct null-flags = %d, want 2", len(rows))
		}
	})
}

func TestOffsetPagination(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		all := queryRows(t, db, "SELECT hours FROM census ORDER BY hours")
		page := queryRows(t, db, "SELECT hours FROM census ORDER BY hours LIMIT 2 OFFSET 2")
		if len(page) != 2 {
			t.Fatalf("page size = %d", len(page))
		}
		if !reflect.DeepEqual(page, all[2:4]) {
			t.Errorf("page = %v, want %v", page, all[2:4])
		}
		// Offset beyond the result set yields nothing.
		empty := queryRows(t, db, "SELECT hours FROM census ORDER BY hours LIMIT 5 OFFSET 50")
		if len(empty) != 0 {
			t.Errorf("overflow offset = %v", empty)
		}
		// Offset without limit.
		tail := queryRows(t, db, "SELECT hours FROM census ORDER BY hours OFFSET 4")
		if len(tail) != 2 {
			t.Errorf("offset-only tail = %d rows, want 2", len(tail))
		}
	})
}

func TestHavingOffsetDistinctRoundTrip(t *testing.T) {
	sql := "SELECT DISTINCT sex, COUNT(*) AS n FROM census GROUP BY sex HAVING (n > 1) ORDER BY n DESC LIMIT 5 OFFSET 1"
	stmt := mustParse(t, sql)
	if !stmt.Distinct || stmt.Having == nil || stmt.Offset != 1 || stmt.Limit != 5 {
		t.Fatalf("parse lost clauses: %+v", stmt)
	}
	s1 := stmt.String()
	s2 := mustParse(t, s1).String()
	if s1 != s2 {
		t.Errorf("round-trip unstable:\n%s\n%s", s1, s2)
	}
}

func TestOffsetParseErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT a FROM t OFFSET x",
		"SELECT a FROM t LIMIT 2 OFFSET -1",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestHavingAliasReference(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		// HAVING can repeat the aggregate expression (alias resolution is
		// via textual match of the same expression).
		rows := queryRows(t, db,
			"SELECT region, SUM(hours) AS total FROM census GROUP BY region HAVING SUM(hours) > 100")
		// region 1: 40+45+20+30 = 135; region 2: 35+50 = 85.
		if len(rows) != 1 || rows[0][0].I != 1 {
			t.Fatalf("got %v", rows)
		}
	})
}
