package sqldb

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // operators and punctuation
	tokKeyword // reserved words, upper-cased
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // keyword text is upper-cased; ident text preserves case
	pos  int
}

// keywords reserved by the dialect. Anything else scans as an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "IS": true, "NULL": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "ASC": true,
	"DESC": true, "TRUE": true, "FALSE": true, "DISTINCT": true,
	"BETWEEN": true, "LIKE": true, "HAVING": true, "OFFSET": true,
}

// lexer scans a SQL string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning the token stream terminated by tokEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			word := l.src[start:l.pos]
			if up := strings.ToUpper(word); keywords[up] {
				l.emit(tokKeyword, up, start)
			} else {
				l.emit(tokIdent, word, start)
			}
		case c >= '0' && c <= '9' || c == '.' && l.peekDigit(1):
			l.pos++
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
				l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		case c == '\'':
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("%w: unterminated string literal at offset %d", ErrParse, start)
				}
				if l.src[l.pos] == '\'' {
					// '' is an escaped quote inside a string literal.
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.emit(tokString, b.String(), start)
		case c == '"':
			// Double-quoted identifier.
			l.pos++
			end := strings.IndexByte(l.src[l.pos:], '"')
			if end < 0 {
				return nil, fmt.Errorf("%w: unterminated quoted identifier at offset %d", ErrParse, start)
			}
			l.emit(tokIdent, l.src[l.pos:l.pos+end], start)
			l.pos += end + 1
		default:
			sym, n := scanSymbol(l.src[l.pos:])
			if n == 0 {
				return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrParse, c, l.pos)
			}
			l.pos += n
			l.emit(tokSymbol, sym, start)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		case '-':
			// "--" line comment.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
				nl := strings.IndexByte(l.src[l.pos:], '\n')
				if nl < 0 {
					l.pos = len(l.src)
				} else {
					l.pos += nl + 1
				}
				continue
			}
			return
		default:
			return
		}
	}
}

func (l *lexer) peekDigit(off int) bool {
	return l.pos+off < len(l.src) && isDigit(l.src[l.pos+off])
}

// scanSymbol matches the longest operator/punctuation prefix of s.
func scanSymbol(s string) (string, int) {
	two := []string{"<=", ">=", "<>", "!=", "||"}
	if len(s) >= 2 {
		for _, t := range two {
			if s[:2] == t {
				return t, 2
			}
		}
	}
	switch s[0] {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		return s[:1], 1
	}
	return "", 0
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
