package sqldb

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrParse is wrapped by every lexing and parsing failure, so callers —
// notably the HTTP server's error classifier — can tell a malformed
// query (the client's mistake, 400) apart from a store failure (the
// deployment's problem, 502) with errors.Is.
var ErrParse = errors.New("sqldb: invalid SQL")

// Parse parses a single SELECT statement in the engine's SQL dialect.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{src: sql, toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Allow a single trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: parse error at offset %d: %s", ErrParse, p.peek().pos, fmt.Sprintf(format, args...))
}

// acceptKeyword consumes the keyword if it is next.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

// acceptSymbol consumes the symbol if it is next.
func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

// expectSymbol consumes the symbol or errors.
func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", t.text)
	}
	stmt.Table = t.text

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errorf("expected OFFSET count, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid OFFSET %q", t.text)
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokString {
			return SelectItem{}, p.errorf("expected alias after AS, found %q", t.text)
		}
		item.Alias = t.text
	} else if p.peek().kind == tokIdent {
		// Implicit alias: SELECT expr alias
		item.Alias = p.next().text
	}
	return item, nil
}

// Expression grammar, tightest-binding last:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr (cmpOp addExpr | IN list | IS [NOT] NULL | [NOT] BETWEEN addExpr AND addExpr)?
//	addExpr := mulExpr (("+"|"-"|"||") mulExpr)*
//	mulExpr := unary (("*"|"/"|"%") unary)*
//	unary   := "-" unary | primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Optional negation for IN/BETWEEN: "x NOT IN (...)".
	neg := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		// Only treat as postfix NOT when followed by IN/BETWEEN/LIKE.
		if p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword &&
			(p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "BETWEEN" || p.toks[p.i+1].text == "LIKE") {
			p.next()
			neg = true
		}
	}
	switch {
	case p.peek().kind == tokSymbol && isCmpOp(p.peek().text):
		op := p.next().text
		if op == "<>" {
			op = "!="
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, List: list, Neg: neg}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.acceptKeyword("IS"):
		isNeg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Neg: isNeg}, nil
	}
	if neg {
		return nil, p.errorf("dangling NOT")
	}
	return l, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "+" || p.peek().text == "-" || p.peek().text == "||") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		if lit, ok := x.(*LiteralExpr); ok {
			switch lit.Val.Kind {
			case KindInt:
				return &LiteralExpr{Val: Int(-lit.Val.I)}, nil
			case KindFloat:
				return &LiteralExpr{Val: Float(-lit.Val.F)}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.acceptSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.text)
			}
			return &LiteralExpr{Val: Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer %q", t.text)
		}
		return &LiteralExpr{Val: Int(i)}, nil
	case tokString:
		p.next()
		return &LiteralExpr{Val: Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &LiteralExpr{Val: Null()}, nil
		case "TRUE":
			p.next()
			return &LiteralExpr{Val: Bool(true)}, nil
		case "FALSE":
			p.next()
			return &LiteralExpr{Val: Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %q", t.text)
	case tokIdent:
		p.next()
		if p.acceptSymbol("(") {
			return p.parseFuncCall(t.text)
		}
		return &ColumnExpr{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			// Bare * select item (SELECT * FROM t).
			p.next()
			return &ColumnExpr{Name: "*"}, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	fe := &FuncExpr{Name: strings.ToUpper(name)}
	if p.acceptSymbol("*") {
		fe.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fe, nil
	}
	if p.acceptSymbol(")") {
		return fe, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fe.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fe.Args = append(fe.Args, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return fe, nil
}
