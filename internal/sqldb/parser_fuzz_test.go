package sqldb

import "testing"

// FuzzParse fuzzes the SQL parser. Two properties:
//
//  1. Parse never panics (the fuzz runtime catches panics as failures).
//  2. Canonical rendering is idempotent: if a parsed statement's
//     String() re-parses, the re-parsed statement must render to the
//     same text. (Re-parsing is allowed to fail for identifiers only
//     reachable through double quotes, e.g. names with spaces — the
//     printer quotes what it can, but names containing a double quote
//     are not representable in the dialect.)
//
// The seed corpus is drawn from the query shapes core/sharing.go
// actually renders — combined target/reference CASE flags, shared
// multi-aggregate lists, multi-attribute GROUP BYs — plus lexer and
// parser edge cases.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// sharing.go renderSQL shapes (the SeeDB workload).
		"SELECT marital, CASE WHEN marital = 'Unmarried' THEN 1 ELSE 0 END AS __seedb_flag, SUM(age), COUNT(age) FROM census GROUP BY marital, CASE WHEN marital = 'Unmarried' THEN 1 ELSE 0 END",
		"SELECT d00, d01, d02, SUM(m00), COUNT(m00), SUM(m01), COUNT(m01), MIN(m02), MAX(m03) FROM syn WHERE NOT (d01 = 'target') GROUP BY d00, d01, d02",
		"SELECT housing, AVG(balance) FROM bank WHERE housing = 'yes' GROUP BY housing",
		"SELECT carrier, COUNT(*) FROM air GROUP BY carrier ORDER BY COUNT(*) DESC LIMIT 10 OFFSET 2",
		// Edge cases.
		"SELECT * FROM t",
		"SELECT DISTINCT a, b FROM t WHERE a IN (1, 2, 3) AND b NOT BETWEEN -1.5 AND 2e3",
		"SELECT COUNT(DISTINCT x), COALESCE(y, 0) FROM t HAVING COUNT(*) > 1",
		"SELECT a FROM t WHERE s = 'it''s' OR s IS NOT NULL ORDER BY 1 DESC",
		"SELECT CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END FROM t",
		"SELECT -x, +y, a || b, c % 2 FROM t WHERE NOT a OR b AND c",
		"SELECT \"quoted col\" FROM \"t\"",
		"SELECT a AS 'alias' FROM t -- comment",
		"SELECT 1.5e+10, .5, 0.e1 FROM t;",
		"SELECT",
		"SELECT a FROM t WHERE x IN (",
		"'",
		"\"",
		"--",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		s1 := stmt.String()
		stmt2, err := Parse(s1)
		if err != nil {
			return
		}
		if s2 := stmt2.String(); s2 != s1 {
			t.Errorf("canonical form not idempotent:\n in: %q\n s1: %q\n s2: %q", sql, s1, s2)
		}
	})
}
