package sqldb

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseBasicSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t")
	if stmt.Table != "t" || len(stmt.Items) != 2 {
		t.Fatalf("bad parse: %+v", stmt)
	}
	if c, ok := stmt.Items[0].Expr.(*ColumnExpr); !ok || c.Name != "a" {
		t.Errorf("item 0 = %v", stmt.Items[0].Expr)
	}
}

func TestParseSeeDBTargetViewQuery(t *testing.T) {
	// The canonical target-view query from Section 2 of the paper.
	sql := "SELECT sex, AVG(capital_gain) FROM census WHERE marital_status = 'unmarried' GROUP BY sex"
	stmt := mustParse(t, sql)
	if stmt.Where == nil || len(stmt.GroupBy) != 1 {
		t.Fatalf("bad parse: %+v", stmt)
	}
	if !IsAggregate(stmt.Items[1].Expr) {
		t.Error("AVG should be detected as aggregate")
	}
}

func TestParseCombinedTargetReferenceQuery(t *testing.T) {
	// The combined query rewrite from Section 4.1: group by an extra
	// CASE flag separating target from reference tuples.
	sql := `SELECT sex, CASE WHEN marital_status = 'unmarried' THEN 1 ELSE 0 END AS grp,
	        AVG(capital_gain), COUNT(*) FROM census
	        GROUP BY sex, CASE WHEN marital_status = 'unmarried' THEN 1 ELSE 0 END`
	stmt := mustParse(t, sql)
	if len(stmt.GroupBy) != 2 {
		t.Fatalf("expected 2 group-by exprs, got %d", len(stmt.GroupBy))
	}
	if _, ok := stmt.GroupBy[1].(*CaseExpr); !ok {
		t.Errorf("second group-by should be CASE, got %T", stmt.GroupBy[1])
	}
	if stmt.Items[1].Alias != "grp" {
		t.Errorf("alias = %q, want grp", stmt.Items[1].Alias)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	b, ok := stmt.Where.(*BinaryExpr)
	if !ok || b.Op != "OR" {
		t.Fatalf("top op should be OR, got %v", stmt.Where)
	}
	r, ok := b.R.(*BinaryExpr)
	if !ok || r.Op != "AND" {
		t.Fatalf("AND should bind tighter: %v", b.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a + b * c FROM t")
	b, ok := stmt.Items[0].Expr.(*BinaryExpr)
	if !ok || b.Op != "+" {
		t.Fatalf("top op should be +: %v", stmt.Items[0].Expr)
	}
	if r, ok := b.R.(*BinaryExpr); !ok || r.Op != "*" {
		t.Fatalf("* should bind tighter: %v", b.R)
	}
}

func TestParseInBetweenIsNull(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x') AND c BETWEEN 1 AND 5 AND d IS NOT NULL AND e IS NULL")
	s := stmt.Where.String()
	for _, want := range []string{"IN (1, 2, 3)", "NOT IN ('x')", "BETWEEN 1 AND 5", "IS NOT NULL", "IS NULL"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered WHERE %q missing %q", s, want)
		}
	}
}

func TestParseOrderLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY n DESC, a ASC LIMIT 10")
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order by parse wrong: %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d, want 10", stmt.Limit)
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
	f0 := stmt.Items[0].Expr.(*FuncExpr)
	if !f0.Star {
		t.Error("COUNT(*) should have Star")
	}
	f1 := stmt.Items[1].Expr.(*FuncExpr)
	if !f1.Distinct {
		t.Error("COUNT(DISTINCT a) should have Distinct")
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE s = 'it''s'")
	cmp := stmt.Where.(*BinaryExpr)
	lit := cmp.R.(*LiteralExpr)
	if lit.Val.S != "it's" {
		t.Errorf("escaped string = %q, want %q", lit.Val.S, "it's")
	}
}

func TestParseNegativeNumbersFolded(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x > -5 AND y < -2.5")
	s := stmt.Where.String()
	if !strings.Contains(s, "-5") || !strings.Contains(s, "-2.5") {
		t.Errorf("negative literals not folded: %s", s)
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "SELECT a -- the dimension\nFROM t -- the table\n")
	if stmt.Table != "t" {
		t.Errorf("table = %q", stmt.Table)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t LIMIT 3")
	if c, ok := stmt.Items[0].Expr.(*ColumnExpr); !ok || c.Name != "*" {
		t.Fatalf("star parse wrong: %v", stmt.Items[0].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t trailing garbage (",
		"SELECT a FROM t WHERE s = 'unterminated",
		"SELECT CASE END FROM t",
		"SELECT a FROM t WHERE a NOT 5",
		"INSERT INTO t VALUES (1)",
		"SELECT a FROM t WHERE a ~ 3",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	// Canonical-form printing must re-parse to the same canonical form.
	queries := []string{
		"SELECT a, AVG(m) FROM t GROUP BY a",
		"SELECT a FROM t WHERE ((x = 1) AND (y != 'z'))",
		"SELECT CASE WHEN (x > 0) THEN 1 ELSE 0 END FROM t",
		"SELECT a, SUM(m) AS s FROM t WHERE (x IN (1, 2)) GROUP BY a ORDER BY s DESC LIMIT 5",
		"SELECT COUNT(*) FROM t",
		"SELECT (a + (b * c)) FROM t",
	}
	for _, sql := range queries {
		s1 := mustParse(t, sql).String()
		s2 := mustParse(t, s1).String()
		if s1 != s2 {
			t.Errorf("round-trip unstable:\n 1: %s\n 2: %s", s1, s2)
		}
	}
}

func TestLexerUnterminatedQuotedIdent(t *testing.T) {
	if _, err := Parse(`SELECT "a FROM t`); err == nil {
		t.Error("unterminated quoted identifier should fail")
	}
}

func TestParseQuotedIdentifier(t *testing.T) {
	stmt := mustParse(t, `SELECT "weird name" FROM t`)
	if c, ok := stmt.Items[0].Expr.(*ColumnExpr); !ok || c.Name != "weird name" {
		t.Errorf("quoted ident = %v", stmt.Items[0].Expr)
	}
}

func TestParseScientificNumbers(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x > 1.5e3 AND y < 2E-2")
	s := stmt.Where.String()
	if !strings.Contains(s, "1500") || !strings.Contains(s, "0.02") {
		t.Errorf("scientific literals wrong: %s", s)
	}
}
