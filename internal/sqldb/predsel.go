package sqldb

// Predicate-compilation layer for the vectorized fast path.
//
// The serial interpreter evaluates WHERE predicates (and the CASE-flag
// predicate of SeeDB's combined target/reference rewrite) through a
// per-row evalFn closure chain: every row pays interface dispatch, Value
// boxing and three-valued-logic plumbing even when the predicate is a
// conjunction of trivial column-vs-literal comparisons. This file lowers
// the common shapes into branch-light selection kernels that run over
// whole column blocks instead:
//
//   - A predicate is split into top-level conjuncts (NOT is pushed down
//     with De Morgan, which is valid in SQL's three-valued logic). Each
//     conjunct that is a comparison leaf — or a flat disjunction of
//     leaves — compiles to one kernel; everything else stays a per-row
//     closure (a "residual"). The split is per conjunct, so one exotic
//     clause never forces the whole filter back to the interpreter.
//   - Kernels compute "predicate is TRUE" (SQL WHERE semantics: NULL and
//     FALSE both reject) directly from the typed column vectors: numeric
//     columns compare as float64 exactly like the interpreter's
//     Value.Compare/Equal, and dictionary-encoded string columns compare
//     codes as integers against a per-dictionary-entry match table built
//     once per execution — string ordering, equality, IN and BETWEEN all
//     become one []bool lookup per row.
//   - Kernels AND into a caller-owned selection bitmap, one pass per
//     conjunct; disjunctions OR their leaves into a scratch bitmap first.
//     The executor reuses both bitmaps per worker across blocks.
//
// Compilation is two-phase: compileSelection analyzes the expression
// against the schema at plan time, and bind resolves column vectors and
// dictionary match tables against the live table at execution start (the
// dictionary may have grown since planning).

import "math"

// cmpOp is a comparison operator in a compiled leaf.
type cmpOp uint8

// Comparison operators.
const (
	opEQ cmpOp = iota
	opNE
	opLT
	opLE
	opGT
	opGE
)

// negateCmp returns the operator for NOT (x op y) under three-valued
// logic: for non-NULL operands the comparison is total, so negation
// simply flips the operator; NULL operands reject either way.
func negateCmp(op cmpOp) cmpOp {
	switch op {
	case opEQ:
		return opNE
	case opNE:
		return opEQ
	case opLT:
		return opGE
	case opLE:
		return opGT
	case opGT:
		return opLE
	default: // opGE
		return opLT
	}
}

// cmpFloat applies op to two float64s. Numeric leaves compare through
// float64 on purpose: the interpreter's Value.Equal/Compare coerce every
// numeric kind with AsFloat, and the kernels must be bit-compatible with
// it (including the int64-beyond-2^53 precision behavior and the NaN
// corner: Value.Compare returns 0 when either side is NaN, so the
// interpreter evaluates NaN <= x and NaN >= x as TRUE while NaN < x and
// NaN = x stay FALSE — hence opLE/opGE negate the opposite strict
// comparison instead of using IEEE <= / >=).
func cmpFloat(op cmpOp, a, b float64) bool {
	switch op {
	case opEQ:
		return a == b
	case opNE:
		return a != b
	case opLT:
		return a < b
	case opLE:
		return !(a > b)
	case opGT:
		return a > b
	default: // opGE
		return !(a < b)
	}
}

// leafKind discriminates compiled leaf predicates.
type leafKind uint8

const (
	// leafCmp is col <op> literal over a numeric (int/float/bool) column.
	leafCmp leafKind = iota
	// leafIn is col [NOT] IN (literals...) over a numeric column.
	leafIn
	// leafBetween is col [NOT] BETWEEN lo AND hi over a numeric column.
	leafBetween
	// leafStr is any comparison over a dict-string column, reduced to a
	// predicate over dictionary entries (evaluated per code at bind time).
	leafStr
	// leafNull is col IS [NOT] NULL (over any column type).
	leafNull
	// leafConst is a constant truth value (e.g. col = NULL, WHERE TRUE).
	leafConst
)

// selLeaf is one analyzed comparison leaf. The fields used depend on
// kind; col/typ are set for every kind except leafConst.
type selLeaf struct {
	kind leafKind
	col  int
	typ  ColumnType

	op  cmpOp   // leafCmp
	val float64 // leafCmp

	vals []float64 // leafIn
	neg  bool      // leafIn, leafBetween, leafNull: negate the membership/range/null test

	lo, hi float64 // leafBetween

	strPred func(string) bool // leafStr: TRUE-match over dictionary entries

	constVal bool // leafConst
}

// selProg is the plan-time compilation of one predicate: compiled
// conjuncts (each a disjunction of leaves) plus residual conjuncts that
// stay on the closure path. Conjunct order does not affect the result
// (they are ANDed), so kernels always run before residuals.
type selProg struct {
	conjuncts [][]selLeaf
	residual  []evalFn
}

// compileSelection lowers pred into a selection program over schema.
// It never rejects a predicate outright — uncompilable conjuncts become
// residual closures — but surfaces compile errors from the residual
// closures (which cannot happen for predicates the planner already
// compiled whole; the error path is defensive).
func compileSelection(pred Expr, schema *Schema) (*selProg, error) {
	c := &selCompiler{schema: schema}
	if err := c.addConjunct(pred, false); err != nil {
		return nil, err
	}
	return &selProg{conjuncts: c.conjuncts, residual: c.residual}, nil
}

// kernelCount returns how many conjuncts compiled to kernels.
func (p *selProg) kernelCount() int {
	if p == nil {
		return 0
	}
	return len(p.conjuncts)
}

// residualCount returns how many conjuncts stayed on the closure path.
func (p *selProg) residualCount() int {
	if p == nil {
		return 0
	}
	return len(p.residual)
}

// selCompiler accumulates conjuncts during recursive predicate analysis.
type selCompiler struct {
	schema    *Schema
	conjuncts [][]selLeaf
	residual  []evalFn
}

// addConjunct splits e (negated when neg) into conjuncts: AND splits
// directly, NOT(... OR ...) splits by De Morgan. Each leaf conjunct is
// compiled to kernels when its shape allows, and kept as a closure
// residual otherwise.
func (c *selCompiler) addConjunct(e Expr, neg bool) error {
	switch n := e.(type) {
	case *UnaryExpr:
		if n.Op == "NOT" {
			return c.addConjunct(n.X, !neg)
		}
	case *BinaryExpr:
		if (n.Op == "AND" && !neg) || (n.Op == "OR" && neg) {
			if err := c.addConjunct(n.L, neg); err != nil {
				return err
			}
			return c.addConjunct(n.R, neg)
		}
	}
	if leaves, ok := c.compileDisjunction(e, neg); ok {
		c.conjuncts = append(c.conjuncts, leaves)
		return nil
	}
	fn, err := compileScalar(e, c.schema)
	if err != nil {
		return err
	}
	if neg {
		inner := fn
		fn = func(row RowView) Value { return notValue(inner(row)) }
	}
	c.residual = append(c.residual, fn)
	return nil
}

// compileDisjunction flattens e into a disjunction of compilable leaves
// (OR directly, NOT(... AND ...) by De Morgan). A single leaf is a
// one-element disjunction. ok=false means some disjunct is outside the
// compilable shape, in which case the whole conjunct goes residual —
// "a OR weird(b)" cannot split the way a conjunction can.
func (c *selCompiler) compileDisjunction(e Expr, neg bool) ([]selLeaf, bool) {
	switch n := e.(type) {
	case *UnaryExpr:
		if n.Op == "NOT" {
			return c.compileDisjunction(n.X, !neg)
		}
	case *BinaryExpr:
		if (n.Op == "OR" && !neg) || (n.Op == "AND" && neg) {
			l, ok := c.compileDisjunction(n.L, neg)
			if !ok {
				return nil, false
			}
			r, ok := c.compileDisjunction(n.R, neg)
			if !ok {
				return nil, false
			}
			return append(l, r...), true
		}
	}
	leaf, ok := c.compileLeaf(e, neg)
	if !ok {
		return nil, false
	}
	return []selLeaf{leaf}, true
}

// literalValue unwraps a literal expression, including a unary minus
// over a numeric literal (the parser keeps "-10" as -(10)).
func literalValue(e Expr) (Value, bool) {
	switch n := e.(type) {
	case *LiteralExpr:
		return n.Val, true
	case *UnaryExpr:
		if n.Op == "-" {
			if l, ok := n.X.(*LiteralExpr); ok && (l.Val.Kind == KindInt || l.Val.Kind == KindFloat) {
				return negValue(l.Val), true
			}
		}
	}
	return Value{}, false
}

// numericKind reports whether a value participates in the interpreter's
// numeric comparison (AsFloat succeeds).
func numericKind(v Value) bool {
	return v.Kind == KindInt || v.Kind == KindFloat || v.Kind == KindBool
}

// numericColumn reports whether a column type is stored in a numeric
// vector (ints or flts).
func numericColumn(t ColumnType) bool {
	return t == TypeInt || t == TypeFloat || t == TypeBool
}

// compileLeaf compiles one comparison leaf; ok=false means the shape is
// outside the kernel grammar (function calls, arithmetic, column-vs-
// column, kind-mixing comparisons) and the conjunct must go residual.
func (c *selCompiler) compileLeaf(e Expr, neg bool) (selLeaf, bool) {
	if v, ok := literalValue(e); ok {
		// A bare literal predicate (WHERE TRUE): NULL is never TRUE under
		// either polarity; otherwise NOT flips the truth value.
		if v.IsNull() {
			return selLeaf{kind: leafConst, constVal: false}, true
		}
		return selLeaf{kind: leafConst, constVal: v.Truthy() != neg}, true
	}

	switch n := e.(type) {
	case *ColumnExpr:
		// A bare numeric column is Truthy ⇔ non-NULL and != 0, which is
		// exactly a comparison leaf against zero. Bare string columns are
		// never Truthy but NOT over them is IS NOT NULL — leave those to
		// the residual path rather than encode that corner here.
		idx, found := c.schema.Lookup(n.Name)
		if !found || !numericColumn(c.schema.Column(idx).Type) {
			return selLeaf{}, false
		}
		op := opNE
		if neg {
			op = opEQ
		}
		return selLeaf{kind: leafCmp, col: idx, typ: c.schema.Column(idx).Type, op: op, val: 0}, true

	case *BinaryExpr:
		var op cmpOp
		switch n.Op {
		case "=":
			op = opEQ
		case "!=":
			op = opNE
		case "<":
			op = opLT
		case "<=":
			op = opLE
		case ">":
			op = opGT
		case ">=":
			op = opGE
		default:
			return selLeaf{}, false
		}
		colExpr, litExpr := n.L, n.R
		flipped := false
		if _, isCol := colExpr.(*ColumnExpr); !isCol {
			colExpr, litExpr, flipped = n.R, n.L, true
		}
		col, isCol := colExpr.(*ColumnExpr)
		if !isCol {
			return selLeaf{}, false
		}
		lit, isLit := literalValue(litExpr)
		if !isLit {
			return selLeaf{}, false
		}
		idx, found := c.schema.Lookup(col.Name)
		if !found {
			return selLeaf{}, false
		}
		typ := c.schema.Column(idx).Type
		if lit.IsNull() {
			// col <op> NULL is NULL for every row; never TRUE under either
			// polarity.
			return selLeaf{kind: leafConst, constVal: false}, true
		}
		if flipped {
			// lit op col ≡ col (mirrored op) lit.
			switch op {
			case opLT:
				op = opGT
			case opLE:
				op = opGE
			case opGT:
				op = opLT
			case opGE:
				op = opLE
			}
		}
		if neg {
			op = negateCmp(op)
		}
		switch {
		case numericColumn(typ) && numericKind(lit):
			f, _ := lit.AsFloat()
			return selLeaf{kind: leafCmp, col: idx, typ: typ, op: op, val: f}, true
		case typ == TypeString && lit.Kind == KindString:
			s, cop := lit.S, op
			return selLeaf{kind: leafStr, col: idx, typ: typ, strPred: func(d string) bool {
				switch cop {
				case opEQ:
					return d == s
				case opNE:
					return d != s
				case opLT:
					return d < s
				case opLE:
					return d <= s
				case opGT:
					return d > s
				default:
					return d >= s
				}
			}}, true
		default:
			// Kind-mixing comparisons (string column vs number, ...) have
			// interpreter-specific corner semantics; leave them residual.
			return selLeaf{}, false
		}

	case *IsNullExpr:
		col, isCol := n.X.(*ColumnExpr)
		if !isCol {
			return selLeaf{}, false
		}
		idx, found := c.schema.Lookup(col.Name)
		if !found {
			return selLeaf{}, false
		}
		// IS NULL is two-valued, so NOT composes by plain negation.
		return selLeaf{kind: leafNull, col: idx, typ: c.schema.Column(idx).Type, neg: n.Neg != neg}, true

	case *InExpr:
		col, isCol := n.X.(*ColumnExpr)
		if !isCol {
			return selLeaf{}, false
		}
		idx, found := c.schema.Lookup(col.Name)
		if !found {
			return selLeaf{}, false
		}
		typ := c.schema.Column(idx).Type
		effNeg := n.Neg != neg
		// The interpreter matches elements with Value.Equal: NULL and
		// kind-mismatched elements never match and simply drop out of the
		// compiled match set (this mirrors the interpreter, not standard
		// SQL's NULL-poisoned NOT IN).
		switch {
		case numericColumn(typ):
			vals := make([]float64, 0, len(n.List))
			for _, le := range n.List {
				lv, ok := literalValue(le)
				if !ok {
					return selLeaf{}, false
				}
				if numericKind(lv) {
					f, _ := lv.AsFloat()
					vals = append(vals, f)
				} else if !lv.IsNull() && lv.Kind != KindString {
					return selLeaf{}, false
				}
			}
			return selLeaf{kind: leafIn, col: idx, typ: typ, vals: vals, neg: effNeg}, true
		case typ == TypeString:
			set := make(map[string]bool, len(n.List))
			for _, le := range n.List {
				lv, ok := literalValue(le)
				if !ok {
					return selLeaf{}, false
				}
				if lv.Kind == KindString {
					set[lv.S] = true
				}
			}
			return selLeaf{kind: leafStr, col: idx, typ: typ, strPred: func(d string) bool {
				return set[d] != effNeg
			}}, true
		default:
			return selLeaf{}, false
		}

	case *BetweenExpr:
		col, isCol := n.X.(*ColumnExpr)
		if !isCol {
			return selLeaf{}, false
		}
		loV, ok1 := literalValue(n.Lo)
		hiV, ok2 := literalValue(n.Hi)
		if !ok1 || !ok2 {
			return selLeaf{}, false
		}
		idx, found := c.schema.Lookup(col.Name)
		if !found {
			return selLeaf{}, false
		}
		typ := c.schema.Column(idx).Type
		if loV.IsNull() || hiV.IsNull() {
			// A NULL bound makes the whole BETWEEN NULL for every row.
			return selLeaf{kind: leafConst, constVal: false}, true
		}
		effNeg := n.Neg != neg
		switch {
		case numericColumn(typ) && numericKind(loV) && numericKind(hiV):
			lo, _ := loV.AsFloat()
			hi, _ := hiV.AsFloat()
			return selLeaf{kind: leafBetween, col: idx, typ: typ, lo: lo, hi: hi, neg: effNeg}, true
		case typ == TypeString && loV.Kind == KindString && hiV.Kind == KindString:
			lo, hi := loV.S, hiV.S
			return selLeaf{kind: leafStr, col: idx, typ: typ, strPred: func(d string) bool {
				return (d >= lo && d <= hi) != effNeg
			}}, true
		default:
			return selLeaf{}, false
		}
	}
	return selLeaf{}, false
}

// selKernel is one bound conjunct: and() folds "conjunct is TRUE" into
// sel[r-lo] for rows [lo, hi), skipping rows already deselected. scratch
// must be at least hi-lo long; only disjunction kernels use it.
type selKernel interface {
	and(lo, hi int, sel, scratch []bool)
}

// orLeaf is a bound leaf inside a disjunction: or() folds "leaf is TRUE"
// into sel for rows not yet selected.
type orLeaf interface {
	selKernel
	or(lo, hi int, sel []bool)
}

// boundSel is a selection program bound to one table for one execution.
// It is immutable after bind and shared read-only by all scan workers.
type boundSel struct {
	kernels  []selKernel
	residual []evalFn
}

// bind resolves the program's leaves against t's live column vectors and
// dictionaries.
func (p *selProg) bind(t *ColStore) *boundSel {
	if p == nil {
		return nil
	}
	b := &boundSel{residual: p.residual}
	for _, disj := range p.conjuncts {
		if len(disj) == 1 {
			b.kernels = append(b.kernels, bindLeaf(t, disj[0]))
			continue
		}
		or := &kernOr{leaves: make([]orLeaf, len(disj))}
		for i, leaf := range disj {
			or.leaves[i] = bindLeaf(t, leaf)
		}
		b.kernels = append(b.kernels, or)
	}
	return b
}

// apply runs every kernel over [lo, hi), ANDing into sel. Residual
// conjuncts are the caller's per-row business (they need a RowView).
func (b *boundSel) apply(lo, hi int, sel, scratch []bool) {
	for _, k := range b.kernels {
		k.and(lo, hi, sel, scratch)
	}
}

// bindLeaf builds the concrete kernel for one leaf.
func bindLeaf(t *ColStore, leaf selLeaf) orLeaf {
	switch leaf.kind {
	case leafConst:
		return &kernConst{val: leaf.constVal}
	case leafNull:
		return &kernNull{c: &t.cols[leaf.col], wantNull: !leaf.neg}
	case leafStr:
		c := &t.cols[leaf.col]
		match := make([]bool, len(c.dict))
		for i, s := range c.dict {
			match[i] = leaf.strPred(s)
		}
		return &kernDict{c: c, match: match}
	case leafIn:
		return &kernNumIn{c: &t.cols[leaf.col], flt: leaf.typ == TypeFloat, vals: leaf.vals, neg: leaf.neg}
	case leafBetween:
		return &kernNumBetween{c: &t.cols[leaf.col], flt: leaf.typ == TypeFloat, lo: leaf.lo, hi: leaf.hi, neg: leaf.neg}
	default: // leafCmp
		return &kernNumCmp{c: &t.cols[leaf.col], flt: leaf.typ == TypeFloat, op: leaf.op, val: leaf.val}
	}
}

// kernConst is a constant-truth kernel.
type kernConst struct{ val bool }

func (k *kernConst) and(lo, hi int, sel, _ []bool) {
	if k.val {
		return
	}
	clearRange(sel, hi-lo)
}

func (k *kernConst) or(lo, hi int, sel []bool) {
	if !k.val {
		return
	}
	for i := 0; i < hi-lo; i++ {
		sel[i] = true
	}
}

// kernNull tests IS [NOT] NULL.
type kernNull struct {
	c        *columnVector
	wantNull bool
}

func (k *kernNull) isNull(r int) bool { return k.c.nulls != nil && k.c.nulls[r] }

func (k *kernNull) and(lo, hi int, sel, _ []bool) {
	if k.c.nulls == nil {
		// No NULLs in the column: IS NULL never holds, IS NOT NULL always.
		if k.wantNull {
			clearRange(sel, hi-lo)
		}
		return
	}
	nulls, want := k.c.nulls, k.wantNull
	for r := lo; r < hi; r++ {
		if sel[r-lo] {
			sel[r-lo] = nulls[r] == want
		}
	}
}

func (k *kernNull) or(lo, hi int, sel []bool) {
	for r := lo; r < hi; r++ {
		if !sel[r-lo] {
			sel[r-lo] = k.isNull(r) == k.wantNull
		}
	}
}

// kernDict evaluates any dict-string comparison through a per-code match
// table: one nil-check and one []bool index per row.
type kernDict struct {
	c     *columnVector
	match []bool
}

func (k *kernDict) trueAt(r int) bool {
	if k.c.nulls != nil && k.c.nulls[r] {
		return false
	}
	return k.match[k.c.codes[r]]
}

func (k *kernDict) and(lo, hi int, sel, _ []bool) {
	codes, match, nulls := k.c.codes, k.match, k.c.nulls
	if nulls == nil {
		for r := lo; r < hi; r++ {
			if sel[r-lo] {
				sel[r-lo] = match[codes[r]]
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		if sel[r-lo] {
			sel[r-lo] = !nulls[r] && match[codes[r]]
		}
	}
}

func (k *kernDict) or(lo, hi int, sel []bool) {
	for r := lo; r < hi; r++ {
		if !sel[r-lo] {
			sel[r-lo] = k.trueAt(r)
		}
	}
}

// numAt reads the numeric value of column c at row r as float64, the
// same coercion the interpreter's Value.AsFloat applies.
func numAt(c *columnVector, flt bool, r int) float64 {
	if flt {
		return c.flts[r]
	}
	return float64(c.ints[r])
}

// kernNumCmp is col <op> literal over a numeric column.
type kernNumCmp struct {
	c   *columnVector
	flt bool
	op  cmpOp
	val float64
}

func (k *kernNumCmp) trueAt(r int) bool {
	if k.c.nulls != nil && k.c.nulls[r] {
		return false
	}
	return cmpFloat(k.op, numAt(k.c, k.flt, r), k.val)
}

func (k *kernNumCmp) and(lo, hi int, sel, _ []bool) {
	nulls, op, val := k.c.nulls, k.op, k.val
	if k.flt {
		flts := k.c.flts
		if nulls == nil {
			for r := lo; r < hi; r++ {
				if sel[r-lo] {
					sel[r-lo] = cmpFloat(op, flts[r], val)
				}
			}
			return
		}
		for r := lo; r < hi; r++ {
			if sel[r-lo] {
				sel[r-lo] = !nulls[r] && cmpFloat(op, flts[r], val)
			}
		}
		return
	}
	ints := k.c.ints
	if nulls == nil {
		for r := lo; r < hi; r++ {
			if sel[r-lo] {
				sel[r-lo] = cmpFloat(op, float64(ints[r]), val)
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		if sel[r-lo] {
			sel[r-lo] = !nulls[r] && cmpFloat(op, float64(ints[r]), val)
		}
	}
}

func (k *kernNumCmp) or(lo, hi int, sel []bool) {
	for r := lo; r < hi; r++ {
		if !sel[r-lo] {
			sel[r-lo] = k.trueAt(r)
		}
	}
}

// kernNumIn is col [NOT] IN (literals) over a numeric column. SeeDB IN
// lists are short, so a linear scan beats hashing.
type kernNumIn struct {
	c    *columnVector
	flt  bool
	vals []float64
	neg  bool
}

func (k *kernNumIn) trueAt(r int) bool {
	if k.c.nulls != nil && k.c.nulls[r] {
		return false
	}
	v := numAt(k.c, k.flt, r)
	matched := false
	for _, x := range k.vals {
		if v == x {
			matched = true
			break
		}
	}
	return matched != k.neg
}

func (k *kernNumIn) and(lo, hi int, sel, _ []bool) {
	for r := lo; r < hi; r++ {
		if sel[r-lo] {
			sel[r-lo] = k.trueAt(r)
		}
	}
}

func (k *kernNumIn) or(lo, hi int, sel []bool) {
	for r := lo; r < hi; r++ {
		if !sel[r-lo] {
			sel[r-lo] = k.trueAt(r)
		}
	}
}

// kernNumBetween is col [NOT] BETWEEN lo AND hi over a numeric column.
type kernNumBetween struct {
	c      *columnVector
	flt    bool
	lo, hi float64
	neg    bool
}

func (k *kernNumBetween) trueAt(r int) bool {
	if k.c.nulls != nil && k.c.nulls[r] {
		return false
	}
	v := numAt(k.c, k.flt, r)
	// The interpreter tests v.Compare(lo) >= 0 && v.Compare(hi) <= 0,
	// and Compare returns 0 against NaN — so a NaN cell is inside every
	// range. Negated strict comparisons reproduce that.
	return (!(v < k.lo) && !(v > k.hi)) != k.neg
}

func (k *kernNumBetween) and(lo, hi int, sel, _ []bool) {
	nulls, lov, hiv, neg := k.c.nulls, k.lo, k.hi, k.neg
	if k.flt && nulls == nil {
		flts := k.c.flts
		for r := lo; r < hi; r++ {
			if sel[r-lo] {
				v := flts[r]
				sel[r-lo] = (!(v < lov) && !(v > hiv)) != neg
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		if sel[r-lo] {
			sel[r-lo] = k.trueAt(r)
		}
	}
}

func (k *kernNumBetween) or(lo, hi int, sel []bool) {
	for r := lo; r < hi; r++ {
		if !sel[r-lo] {
			sel[r-lo] = k.trueAt(r)
		}
	}
}

// kernOr is a disjunction conjunct: leaves OR into the scratch bitmap,
// which then ANDs into the selection.
type kernOr struct{ leaves []orLeaf }

func (k *kernOr) and(lo, hi int, sel, scratch []bool) {
	n := hi - lo
	clearRange(scratch, n)
	for _, l := range k.leaves {
		l.or(lo, hi, scratch[:n])
	}
	for i := 0; i < n; i++ {
		if sel[i] {
			sel[i] = scratch[i]
		}
	}
}

// clearRange sets the first n entries of b to false (the clear builtin
// lowers to memclr).
func clearRange(b []bool, n int) {
	clear(b[:n])
}

// fillRange sets the first n entries of b to true.
func fillRange(b []bool, n int) {
	for i := 0; i < n; i++ {
		b[i] = true
	}
}

// groupKeyBits returns the identity bits of a numeric group-key cell:
// the raw int64 bits for int columns and the IEEE-754 bits for float
// columns. This matches the serial interpreter's appendKey encoding, so
// -0.0 vs +0.0 and distinct NaN payloads split groups identically on
// both paths.
func groupKeyBits(c *columnVector, typ ColumnType, r int) uint64 {
	if typ == TypeFloat {
		return math.Float64bits(c.flts[r])
	}
	return uint64(c.ints[r])
}
