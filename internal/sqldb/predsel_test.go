package sqldb

import (
	"fmt"
	"math"
	"testing"
)

// predselTable builds a small table covering every column type with
// NULLs in each nullable column, plus NaN and ±Inf in the float column
// (the interpreter's Value.Compare treats NaN as equal to everything,
// so <=, >= and BETWEEN are TRUE for NaN cells — the kernels must
// reproduce that exactly).
func predselTable(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	tab, err := db.CreateTable("t", MustSchema(
		Column{Name: "s", Type: TypeString},
		Column{Name: "b", Type: TypeBool},
		Column{Name: "i", Type: TypeInt},
		Column{Name: "f", Type: TypeFloat},
	), LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vals := []Value{
			Str(fmt.Sprintf("v%02d", r%13)),
			Bool(r%3 == 0),
			Int(int64(r%21 - 10)),
			Float(float64(r%17) * 0.25),
		}
		if r%7 == 0 {
			vals[0] = Null()
		}
		if r%5 == 0 {
			vals[1] = Null()
		}
		if r%11 == 0 {
			vals[2] = Null()
		}
		switch r % 23 {
		case 1:
			vals[3] = Float(math.NaN())
		case 2:
			vals[3] = Float(math.Inf(1))
		case 3:
			vals[3] = Float(math.Inf(-1))
		}
		if r%4 == 0 {
			vals[3] = Null()
		}
		if err := tab.AppendRow(vals); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSelectionKernelsMatchInterpreter runs one WHERE shape per grammar
// production (and the NULL-semantics edges) under the kernels and under
// the serial closure interpreter, asserting identical filtered groups.
func TestSelectionKernelsMatchInterpreter(t *testing.T) {
	db := predselTable(t, 3000)
	preds := []string{
		// Comparison leaves per column type, both literal positions.
		"i > 3", "i <= -4", "3 < i", "f >= 2.5", "f != 0.25", "2.0 > f",
		"s = 'v05'", "s != 'v05'", "s < 'v07'", "s >= 'v10'",
		"b = TRUE", "b != FALSE", "b", "NOT b", "i", "NOT i", "f",
		// NULL tests and NULL-literal comparisons.
		"s IS NULL", "s IS NOT NULL", "f IS NULL", "i IS NOT NULL",
		"i = NULL", "NULL = i", "s != NULL", "f < NULL", "NOT (i = NULL)",
		// IN / BETWEEN, both polarities, mixed-kind elements.
		"i IN (1, 2, 3)", "i NOT IN (0, -1)", "i IN (1, NULL, 2)",
		"s IN ('v01', 'v02')", "s NOT IN ('v03', 'v04', 'nope')",
		"f BETWEEN 0.5 AND 2.75", "f NOT BETWEEN 1.0 AND 2.0",
		"s BETWEEN 'v02' AND 'v09'", "i BETWEEN NULL AND 5",
		// Conjunctions, disjunctions, De Morgan, nesting.
		"i > 0 AND f < 3.0", "s = 'v01' OR s = 'v02' OR b = TRUE",
		"NOT (i > 0 AND f < 3.0)", "NOT (s = 'v01' OR i IS NULL)",
		"NOT (NOT (i > 0))", "i > 0 AND (s = 'v01' OR f > 1.0) AND b IS NOT NULL",
		// Constant predicates.
		"TRUE", "FALSE", "NOT TRUE", "NULL",
		// Hybrid: residual conjuncts alongside kernel conjuncts.
		"i > 0 AND i % 2 = 0", "f < 3.0 AND ABS(i) > 2", "i + 0 > 3",
		"LENGTH(s) = 3 OR i > 5",
	}
	for _, pred := range preds {
		// The aggregates deliberately avoid float NaN accumulation:
		// Value.Compare treats NaN as equal to everything, so MIN/MAX
		// (and NaN-payload-sensitive SUM) over data mixing NaN and ±Inf
		// are inherently order-dependent across chunk splits — a
		// pre-existing executor caveat, not a predicate property. The
		// per-group COUNTs pin the filter semantics exactly: any row
		// mis-selected by a kernel shifts a group's count.
		sql := fmt.Sprintf("SELECT s, COUNT(*), COUNT(f), SUM(i), MIN(i) FROM t WHERE %s GROUP BY s", pred)
		serial, err := db.QueryOpts(sql, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial: %v", pred, err)
		}
		for _, workers := range []int{2, 5} {
			par, err := db.QueryOpts(sql, ExecOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", pred, workers, err)
			}
			if !par.Stats.Vectorized {
				t.Fatalf("%s: expected vectorized run (reason %q)", pred, par.Stats.FallbackReason)
			}
			mustEqualResults(t, sql, serial, par)
		}
	}
}

// TestCompileSelectionSplit pins the kernel/residual classification: the
// hybrid filter must compile exactly the compilable conjuncts and keep
// the rest as closures, never rejecting the whole predicate.
func TestCompileSelectionSplit(t *testing.T) {
	schema := MustSchema(
		Column{Name: "s", Type: TypeString},
		Column{Name: "b", Type: TypeBool},
		Column{Name: "i", Type: TypeInt},
		Column{Name: "f", Type: TypeFloat},
	)
	cases := []struct {
		pred               string
		kernels, residuals int
	}{
		{"i > 3", 1, 0},
		{"i > 3 AND s = 'x'", 2, 0},
		{"i > 3 AND i % 2 = 0", 1, 1},
		{"i % 2 = 0 AND ABS(f) > 1", 0, 2},
		{"s = 'a' OR s = 'b'", 1, 0},
		{"s = 'a' OR ABS(f) > 1", 0, 1}, // one exotic disjunct poisons the OR
		{"NOT (i > 3 OR f < 1.0)", 2, 0},
		{"NOT (i > 3 AND f < 1.0)", 1, 0},
		{"i IS NULL AND s IS NOT NULL AND b = TRUE AND f BETWEEN 0.0 AND 1.0", 4, 0},
		{"i = NULL", 1, 0},
		{"f > i", 0, 1}, // column vs column
	}
	for _, tc := range cases {
		stmt, err := Parse("SELECT COUNT(*) FROM t WHERE " + tc.pred)
		if err != nil {
			t.Fatalf("%s: %v", tc.pred, err)
		}
		prog, err := compileSelection(stmt.Where, schema)
		if err != nil {
			t.Fatalf("%s: %v", tc.pred, err)
		}
		if got := prog.kernelCount(); got != tc.kernels {
			t.Errorf("%s: %d kernels, want %d", tc.pred, got, tc.kernels)
		}
		if got := prog.residualCount(); got != tc.residuals {
			t.Errorf("%s: %d residuals, want %d", tc.pred, got, tc.residuals)
		}
	}
}

// TestNumDictOverflow pins the runtime-dictionary bound: a dictionary at
// its radix refuses new codes (the executor then falls back serially).
func TestNumDictOverflow(t *testing.T) {
	d := newNumDict(4) // codes 1..3 available (0 = NULL)
	for i := uint64(0); i < 3; i++ {
		if _, ok := d.idFor(i); !ok {
			t.Fatalf("value %d should fit in radix 4", i)
		}
	}
	if _, ok := d.idFor(99); ok {
		t.Fatal("4th distinct value must overflow radix 4")
	}
	if id, ok := d.idFor(1); !ok || id != 2 {
		t.Fatalf("existing value must still resolve after overflow: id=%d ok=%v", id, ok)
	}
}

// TestNthRootFloor sanity-checks the numeric-radix budget split.
func TestNthRootFloor(t *testing.T) {
	cases := []struct {
		b    uint64
		n    int
		want uint64
	}{
		{maxGroupIDSpace, 1, maxGroupIDSpace},
		{1 << 40, 2, 1 << 20},
		{1 << 40, 3, 10321},
		{100, 2, 10},
		{99, 2, 9},
		{1, 3, 1},
	}
	for _, tc := range cases {
		if got := nthRootFloor(tc.b, tc.n); got != tc.want {
			t.Errorf("nthRootFloor(%d, %d) = %d, want %d", tc.b, tc.n, got, tc.want)
		}
	}
}
