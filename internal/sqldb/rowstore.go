package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// RowStore is a row-oriented table: tuples are stored contiguously as
// serialized bytes, the way a disk-backed row store lays records out on
// heap pages. This models the "ROW" system of the SeeDB paper's
// evaluation. A scan deserializes every field of every tuple before the
// executor sees it — the cost is proportional to the full tuple width
// irrespective of how many columns a query touches, which is exactly the
// property that makes shared scans so valuable on row stores (the
// paper's 40X sharing gain on ROW vs 6X on COL).
//
// Tuple encoding, per field:
//
//	INT/FLOAT  kind byte + 8 bytes little-endian
//	BOOL       kind byte + 1 byte
//	TEXT       kind byte + 4-byte length + inline string bytes
//	NULL       kind byte
//
// String fields decode through a per-column intern table so scans do not
// allocate, but they still pay the per-field hash — the analogue of a
// row store's per-attribute copy out of the page.
type RowStore struct {
	name    string
	schema  *Schema
	width   int
	data    []byte // serialized tuples, back to back
	offsets []int  // offsets[i] = start of row i in data; sentinel at end
	dicts   []rowDict
	gen     atomic.Uint64
}

// rowDict is a per-column string intern table: decode looks inline bytes
// up here instead of allocating a fresh string per field per row.
type rowDict struct {
	index map[string]string
}

// tuple field tags (distinct from ValueKind so encodings stay stable).
const (
	tagNull  byte = 0
	tagInt   byte = 1
	tagFloat byte = 2
	tagStr   byte = 3
	tagBool  byte = 4
)

// NewRowStore creates an empty row-oriented table.
func NewRowStore(name string, schema *Schema) *RowStore {
	t := &RowStore{
		name:    name,
		schema:  schema,
		width:   schema.NumColumns(),
		offsets: []int{0},
	}
	t.dicts = make([]rowDict, schema.NumColumns())
	for i := 0; i < schema.NumColumns(); i++ {
		if schema.Column(i).Type == TypeString {
			t.dicts[i].index = make(map[string]string)
		}
	}
	return t
}

// Name returns the table name.
func (t *RowStore) Name() string { return t.name }

// Schema returns the table schema.
func (t *RowStore) Schema() *Schema { return t.schema }

// Layout returns LayoutRow.
func (t *RowStore) Layout() Layout { return LayoutRow }

// NumRows returns the number of stored rows.
func (t *RowStore) NumRows() int { return len(t.offsets) - 1 }

// Generation returns the table's content generation (bumped per append).
func (t *RowStore) Generation() uint64 { return t.gen.Load() }

// AppendRow serializes one tuple onto the heap.
func (t *RowStore) AppendRow(vals []Value) error {
	if len(vals) != t.width {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.name, t.width, len(vals))
	}
	start := len(t.data)
	for i, raw := range vals {
		v, err := coerce(raw, t.schema.Column(i).Type)
		if err != nil {
			t.data = t.data[:start] // roll back the partial tuple
			return fmt.Errorf("%w (column %s)", err, t.schema.Column(i).Name)
		}
		switch v.Kind {
		case KindNull:
			t.data = append(t.data, tagNull)
		case KindInt:
			t.data = append(t.data, tagInt)
			t.data = binary.LittleEndian.AppendUint64(t.data, uint64(v.I))
		case KindFloat:
			t.data = append(t.data, tagFloat)
			t.data = binary.LittleEndian.AppendUint64(t.data, math.Float64bits(v.F))
		case KindBool:
			b := byte(0)
			if v.I != 0 {
				b = 1
			}
			t.data = append(t.data, tagBool, b)
		case KindString:
			d := &t.dicts[i]
			if _, ok := d.index[v.S]; !ok {
				d.index[v.S] = v.S
			}
			t.data = append(t.data, tagStr)
			t.data = binary.LittleEndian.AppendUint32(t.data, uint32(len(v.S)))
			t.data = append(t.data, v.S...)
		}
	}
	t.offsets = append(t.offsets, len(t.data))
	t.gen.Add(1)
	return nil
}

// Reserve pre-allocates capacity for approximately n additional rows.
func (t *RowStore) Reserve(n int) {
	// Estimate 9 bytes per field (the INT/FLOAT encoding).
	need := len(t.data) + n*t.width*9
	if cap(t.data) < need {
		grown := make([]byte, len(t.data), need)
		copy(grown, t.data)
		t.data = grown
	}
	if cap(t.offsets) < len(t.offsets)+n {
		grown := make([]int, len(t.offsets), len(t.offsets)+n+1)
		copy(grown, t.offsets)
		t.offsets = grown
	}
}

// rowSlice is the RowView over one deserialized tuple.
type rowSlice []Value

// Value returns the col-th field of the tuple.
func (r rowSlice) Value(col int) Value { return r[col] }

// ScanRange implements Table. The cols hint is ignored: a row store
// deserializes the whole tuple on every scan. The scratch tuple is reused
// across rows, so the RowView is only valid inside the callback.
func (t *RowStore) ScanRange(lo, hi int, cols []int, fn func(row RowView) error) error {
	lo, hi = clampRange(lo, hi, t.NumRows())
	scratch := make([]Value, t.width)
	for i := lo; i < hi; i++ {
		if err := t.decode(t.data[t.offsets[i]:t.offsets[i+1]], scratch); err != nil {
			return err
		}
		if err := fn(rowSlice(scratch)); err != nil {
			return err
		}
	}
	return nil
}

// decode deserializes one tuple into out.
func (t *RowStore) decode(buf []byte, out []Value) error {
	pos := 0
	for i := 0; i < t.width; i++ {
		if pos >= len(buf) {
			return fmt.Errorf("sqldb: table %s: truncated tuple", t.name)
		}
		tag := buf[pos]
		pos++
		switch tag {
		case tagNull:
			out[i] = Value{Kind: KindNull}
		case tagInt:
			out[i] = Value{Kind: KindInt, I: int64(binary.LittleEndian.Uint64(buf[pos:]))}
			pos += 8
		case tagFloat:
			out[i] = Value{Kind: KindFloat, F: math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))}
			pos += 8
		case tagBool:
			out[i] = Value{Kind: KindBool, I: int64(buf[pos])}
			pos++
		case tagStr:
			n := int(binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
			if pos+n > len(buf) {
				return fmt.Errorf("sqldb: table %s: truncated string field", t.name)
			}
			// Interned lookup: string(b) map keys do not allocate.
			s, ok := t.dicts[i].index[string(buf[pos:pos+n])]
			if !ok {
				s = string(buf[pos : pos+n])
			}
			out[i] = Value{Kind: KindString, S: s}
			pos += n
		default:
			return fmt.Errorf("sqldb: table %s: corrupt tuple tag %d", t.name, tag)
		}
	}
	return nil
}

var _ Table = (*RowStore)(nil)
