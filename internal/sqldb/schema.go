package sqldb

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered set of columns with case-insensitive name lookup.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// non-empty and unique (case-insensitively).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("sqldb: column %d has empty name", i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column name %q", c.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Lookup returns the index of the named column (case-insensitive) and
// whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Layout identifies a table's physical storage organization.
type Layout uint8

// Physical layouts; these correspond to the "ROW" and "COL" systems in the
// SeeDB paper's evaluation.
const (
	LayoutRow Layout = iota
	LayoutCol
)

// String returns the paper's name for the layout.
func (l Layout) String() string {
	switch l {
	case LayoutRow:
		return "ROW"
	case LayoutCol:
		return "COL"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// RowView provides positional access to the current row during a scan.
// Implementations are only valid for the duration of the scan callback.
type RowView interface {
	// Value returns the value of the column at schema position col.
	Value(col int) Value
}

// Table is a stored relation. Implementations must support concurrent
// readers once loading has finished; writes are not synchronized with
// reads.
type Table interface {
	// Name returns the table name.
	Name() string
	// Schema returns the table schema.
	Schema() *Schema
	// NumRows returns the current row count.
	NumRows() int
	// Layout reports the physical layout (ROW or COL).
	Layout() Layout
	// AppendRow appends one row; vals must have one value per column,
	// coercible to the column types.
	AppendRow(vals []Value) error
	// Generation returns a counter that increases with every successful
	// AppendRow. Together with the catalog epoch (see DB.TableVersion) it
	// versions the table's contents for cache invalidation.
	Generation() uint64
	// ScanRange invokes fn for every row index in [lo, hi), clamped to
	// the table size. cols lists the column indices the consumer will
	// read; a column store uses it to touch only those vectors, while a
	// row store ignores it (it pays full tuple width either way). The
	// RowView passed to fn is invalidated when fn returns. Scanning stops
	// early if fn returns a non-nil error, which is then returned.
	ScanRange(lo, hi int, cols []int, fn func(row RowView) error) error
}

// clampRange clamps [lo, hi) to [0, n).
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n || hi < 0 {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
