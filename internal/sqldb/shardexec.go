package sqldb

// Distributed execution support for shard-routing backends.
//
// A shard router (internal/backend/shardbe) holds a fact table
// partitioned row-wise across N child stores and must answer any query
// the single-store engine would — bit for bit. This file supplies the
// two halves of that contract:
//
//   - NewShardPlan analyzes one SELECT and rewrites it into a *partial*
//     statement every shard executes locally. Aggregates are decomposed
//     into mergeable pieces: COUNT stays a count, SUM and AVG become
//     SUM+COUNT pairs (AVG's division is deferred to finalization),
//     MIN/MAX stay MIN/MAX, and COUNT(DISTINCT x) adds x to the child's
//     GROUP BY so the merge can union value sets instead of adding
//     overlapping counts. HAVING, ORDER BY, DISTINCT, LIMIT and OFFSET
//     are stripped from the child statement — they are meaningless on a
//     partial view of the data — and re-applied after the merge.
//
//   - Merge folds the child results back together with the same
//     discipline the parallel vectorized executor uses for its worker
//     chunks (vexec.go): partials combine through aggState.merge-style
//     updates in shard order, and each shard's unseen groups append in
//     that shard's first-seen order. When shards hold contiguous blocks
//     of the original row order, this reproduces exactly the first-seen
//     group order of an unsharded sequential scan; the finalize stage
//     (HAVING, outputs, ORDER BY, DISTINCT, LIMIT/OFFSET) is the
//     single-store plan's own code, so nothing downstream can diverge.
//
// Floating-point caveat, shared with vexec.go: SUM/AVG reassociate
// addition across shard boundaries, so float aggregates can differ from
// a single-store scan in final ulps when partial sums are inexact. On
// data whose partial sums are exactly representable (the differential
// and conformance harnesses generate such data on purpose) results are
// bit-identical. Two residual caveats are new here: a SUM/AVG argument
// expression mixing float-convertible and string values inside one group
// merges by the child's non-NULL count rather than the float-convertible
// count, and MIN/MAX ties between bit-distinct equal-comparing values
// (NaN payloads, -0.0 vs 0.0) resolve in sub-group rather than row order
// when a COUNT(DISTINCT) forced sub-grouping. Neither shape occurs in
// SeeDB-generated queries.

import "fmt"

// shardSlot describes how one aggregate slot of the original plan is
// carried through a child's partial result row.
type shardSlot struct {
	kind     aggKind
	distinct bool
	// keyPos (distinct only) is the child column holding the argument
	// value whose distinct count is being taken.
	keyPos int
	// cntCol is the partial COUNT column (count kinds and SUM/AVG);
	// sumCol the partial SUM column (SUM/AVG); valCol the partial MIN or
	// MAX column. Unused positions are -1.
	cntCol, sumCol, valCol int
}

// ShardPlan is one SELECT decomposed for partitioned execution: the
// partial statement each shard runs, plus the merge that reassembles the
// original query's result from the shards' partial rows.
type ShardPlan struct {
	p          *plan
	childSQL   string
	numKeys    int // leading child columns that are original group keys
	childWidth int // expected child result row width
	slots      []shardSlot
}

// NewShardPlan compiles stmt against the partitioned table's schema and
// returns the decomposed plan. Every statement the single-store engine
// accepts is supported; compile errors are the same errors the embedded
// store would report.
func NewShardPlan(stmt *SelectStmt, schema *Schema) (*ShardPlan, error) {
	p, err := compileForSchemaOpt(stmt, schema, false)
	if err != nil {
		return nil, err
	}
	sp := &ShardPlan{p: p}
	if p.grouped {
		sp.buildGroupedChild(stmt)
	} else {
		sp.buildSimpleChild(stmt)
	}
	return sp, nil
}

// ChildSQL returns the partial statement each shard executes, rendered
// as canonical SQL.
func (sp *ShardPlan) ChildSQL() string { return sp.childSQL }

// Grouped reports whether the plan aggregates (merge combines partial
// aggregation states) or projects (merge concatenates rows).
func (sp *ShardPlan) Grouped() bool { return sp.p.grouped }

// buildGroupedChild rewrites an aggregation statement into its partial
// form: the original group keys (plus any COUNT(DISTINCT) argument
// columns) followed by decomposed partial-aggregate columns.
func (sp *ShardPlan) buildGroupedChild(stmt *SelectStmt) {
	groupStrs := make([]string, len(stmt.GroupBy))
	items := make([]SelectItem, 0, len(stmt.GroupBy)+len(sp.p.aggs))
	for i, g := range stmt.GroupBy {
		groupStrs[i] = g.String()
		items = append(items, SelectItem{Expr: g})
	}
	sp.numKeys = len(stmt.GroupBy)

	// keyPosFor resolves a COUNT(DISTINCT) argument to a child key
	// column: an original group key when the texts match, else an extra
	// key appended to the child GROUP BY (deduplicated by text).
	extraIdx := make(map[string]int)
	keyPosFor := func(e Expr) int {
		s := e.String()
		for i, gs := range groupStrs {
			if s == gs {
				return i
			}
		}
		if pos, ok := extraIdx[s]; ok {
			return pos
		}
		pos := len(items)
		extraIdx[s] = pos
		items = append(items, SelectItem{Expr: e})
		return pos
	}
	// First pass: distinct-argument keys, so every key column precedes
	// every partial-aggregate column and the child GROUP BY is a prefix.
	for i := range sp.p.aggs {
		if sp.p.aggs[i].distinct {
			keyPosFor(sp.p.aggs[i].src.Args[0])
		}
	}
	groupByLen := len(items)

	// Partial aggregate columns, deduplicated by rendered text so a
	// repeated aggregate (legal SQL, shared slot upstream) is computed
	// once per shard too.
	partialIdx := make(map[string]int)
	partialFor := func(e Expr) int {
		s := e.String()
		if pos, ok := partialIdx[s]; ok {
			return pos
		}
		pos := len(items)
		partialIdx[s] = pos
		items = append(items, SelectItem{Expr: e})
		return pos
	}

	sp.slots = make([]shardSlot, len(sp.p.aggs))
	for i := range sp.p.aggs {
		a := &sp.p.aggs[i]
		slot := shardSlot{kind: a.kind, distinct: a.distinct, keyPos: -1, cntCol: -1, sumCol: -1, valCol: -1}
		switch {
		case a.distinct:
			slot.keyPos = keyPosFor(a.src.Args[0])
		case a.kind == aggCountStar:
			slot.cntCol = partialFor(&FuncExpr{Name: "COUNT", Star: true})
		case a.kind == aggCount:
			slot.cntCol = partialFor(&FuncExpr{Name: "COUNT", Args: []Expr{a.src.Args[0]}})
		case a.kind == aggSum || a.kind == aggAvg:
			slot.sumCol = partialFor(&FuncExpr{Name: "SUM", Args: []Expr{a.src.Args[0]}})
			slot.cntCol = partialFor(&FuncExpr{Name: "COUNT", Args: []Expr{a.src.Args[0]}})
		case a.kind == aggMin:
			slot.valCol = partialFor(&FuncExpr{Name: "MIN", Args: []Expr{a.src.Args[0]}})
		case a.kind == aggMax:
			slot.valCol = partialFor(&FuncExpr{Name: "MAX", Args: []Expr{a.src.Args[0]}})
		}
		sp.slots[i] = slot
	}

	// A HAVING-only statement can plan no keys and no aggregates; keep
	// the child select list non-empty (the placeholder feeds no slot).
	if len(items) == 0 {
		items = append(items, SelectItem{Expr: &FuncExpr{Name: "COUNT", Star: true}})
	}

	child := &SelectStmt{
		Items: items,
		Table: stmt.Table,
		Where: stmt.Where,
		Limit: -1,
	}
	child.GroupBy = make([]Expr, groupByLen)
	for i := 0; i < groupByLen; i++ {
		child.GroupBy[i] = items[i].Expr
	}
	sp.childWidth = len(items)
	sp.childSQL = child.String()
}

// buildSimpleChild rewrites a projection-only statement: the original
// select list plus one extra column per ORDER BY key that does not
// resolve to an output column, so the merge can sort without re-scanning
// base rows. DISTINCT/ORDER BY/LIMIT/OFFSET move to the merge.
func (sp *ShardPlan) buildSimpleChild(stmt *SelectStmt) {
	items := append([]SelectItem(nil), stmt.Items...)
	extras := 0
	for i := range sp.p.orderBy {
		if sp.p.orderBy[i].eval != nil {
			items = append(items, SelectItem{Expr: stmt.OrderBy[i].Expr})
			extras++
		}
	}
	child := &SelectStmt{
		Items: items,
		Table: stmt.Table,
		Where: stmt.Where,
		Limit: -1,
	}
	// p.outputs reflects SELECT * expansion; the child expands the same
	// way, so its rows are outputs ++ inline order keys.
	sp.childWidth = len(sp.p.outputs) + extras
	sp.childSQL = child.String()
}

// ShardPart is one shard's contribution to a merge: the partial result
// rows plus the child execution's materialized-group count (which the
// global-aggregation Groups accounting below needs — rows alone cannot
// distinguish a shard whose scan matched nothing from a shard that was
// never scanned, because grouped-with-no-keys children emit a synthetic
// all-NULL row either way).
type ShardPart struct {
	Rows   [][]Value
	Groups int
}

// Merge reassembles the original query's result from per-shard partial
// results, in shard order. Result.Stats reports only Groups (the merged
// pre-HAVING group count, matching what a single-store execution would
// materialize); scan counters are the caller's to aggregate from the
// child executions.
func (sp *ShardPlan) Merge(parts []ShardPart) (*Result, error) {
	p := sp.p
	res := &Result{Columns: p.colNames}
	res.Stats.Workers = 1

	if !p.grouped {
		for _, part := range parts {
			for _, row := range part.Rows {
				if len(row) != sp.childWidth {
					return nil, fmt.Errorf("sqldb: shard merge: child row has %d columns, want %d", len(row), sp.childWidth)
				}
			}
			res.Rows = append(res.Rows, part.Rows...)
		}
		p.postProcess(res)
		return res, nil
	}

	groups := make(map[string]*groupEntry)
	var entries []*groupEntry
	var keyBuf []byte
	anyChildGroups := false
	for _, part := range parts {
		if part.Groups > 0 {
			anyChildGroups = true
		}
		for _, row := range part.Rows {
			if len(row) != sp.childWidth {
				return nil, fmt.Errorf("sqldb: shard merge: child row has %d columns, want %d", len(row), sp.childWidth)
			}
			keyBuf = keyBuf[:0]
			for i := 0; i < sp.numKeys; i++ {
				keyBuf = row[i].appendKey(keyBuf)
			}
			g, ok := groups[string(keyBuf)]
			if !ok {
				keys := make([]Value, sp.numKeys)
				copy(keys, row[:sp.numKeys])
				g = &groupEntry{keys: keys, states: make([]aggState, len(p.aggs))}
				groups[string(keyBuf)] = g
				entries = append(entries, g)
			}
			for si := range sp.slots {
				sp.slots[si].fold(&g.states[si], row)
			}
		}
	}

	res.Stats.Groups = len(entries)
	if sp.numKeys == 0 {
		// Global aggregation: a single-store scan materializes one group
		// exactly when some row survived the filter. Children that matched
		// nothing still contributed their synthetic row to the merge (a
		// value-neutral zero state), so the group count comes from the
		// children's own accounting instead.
		res.Stats.Groups = 0
		if anyChildGroups {
			res.Stats.Groups = 1
		}
	}
	p.finalizeGroups(entries, res)
	p.postProcess(res)
	return res, nil
}

// fold combines one child partial row into an aggregate state, mirroring
// aggState.merge for the decomposed column layout.
func (s *shardSlot) fold(st *aggState, row []Value) {
	switch {
	case s.distinct:
		v := row[s.keyPos]
		if v.IsNull() {
			return // SQL aggregates skip NULLs
		}
		if st.distinct == nil {
			st.distinct = make(map[string]struct{})
		}
		st.distinct[string(v.appendKey(nil))] = struct{}{}
	case s.kind == aggCountStar || s.kind == aggCount:
		if n, ok := row[s.cntCol].AsInt(); ok {
			st.count += n
		}
	case s.kind == aggSum || s.kind == aggAvg:
		// A NULL partial sum means the shard saw no summable value in the
		// group; skipping it (count included) reproduces the single-store
		// accumulator, which only counts rows it actually summed.
		sum := row[s.sumCol]
		if sum.IsNull() {
			return
		}
		f, ok := sum.AsFloat()
		if !ok {
			return
		}
		n, _ := row[s.cntCol].AsInt()
		st.count += n
		st.sum += f
	case s.kind == aggMin:
		v := row[s.valCol]
		if !v.IsNull() && (!st.seen || v.Compare(st.min) < 0) {
			st.min = v
			st.seen = true
		}
	case s.kind == aggMax:
		v := row[s.valCol]
		if !v.IsNull() && (!st.seen || v.Compare(st.max) > 0) {
			st.max = v
			st.seen = true
		}
	}
}
