package sqldb

import (
	"strings"
	"testing"
)

// planFor compiles a shard plan against a canonical test schema.
func planFor(t *testing.T, sql string) *ShardPlan {
	t.Helper()
	schema := MustSchema(
		Column{Name: "d", Type: TypeString},
		Column{Name: "k", Type: TypeInt},
		Column{Name: "m", Type: TypeFloat},
	)
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewShardPlan(stmt, schema)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestShardPlanChildSQL(t *testing.T) {
	cases := []struct {
		sql     string
		want    []string // substrings the child SQL must contain
		wantNot []string
	}{
		{
			// AVG decomposes into SUM+COUNT; HAVING/ORDER BY/LIMIT stay
			// out of the child statement.
			sql:     "SELECT d, AVG(m) FROM t GROUP BY d HAVING COUNT(*) > 1 ORDER BY 2 LIMIT 5",
			want:    []string{"SUM(m)", "COUNT(m)", "COUNT(*)", "GROUP BY d"},
			wantNot: []string{"AVG", "HAVING", "ORDER BY", "LIMIT"},
		},
		{
			// COUNT(DISTINCT k) adds k to the child GROUP BY instead of a
			// partial count.
			sql:  "SELECT d, COUNT(DISTINCT k) FROM t GROUP BY d",
			want: []string{"GROUP BY d, k"},
		},
		{
			// A repeated aggregate is computed once per shard.
			sql:  "SELECT d, SUM(m), SUM(m) FROM t GROUP BY d",
			want: []string{"SELECT d, SUM(m), COUNT(m) FROM t"},
		},
		{
			// Simple projections keep the filter and ship an extra column
			// per non-output ORDER BY key.
			sql:     "SELECT d FROM t WHERE k > 1 ORDER BY LOWER(d) DESC LIMIT 2",
			want:    []string{"SELECT d, LOWER(d) FROM t WHERE", "(k > 1)"},
			wantNot: []string{"ORDER BY", "LIMIT"},
		},
	}
	for _, tc := range cases {
		sp := planFor(t, tc.sql)
		child := sp.ChildSQL()
		for _, w := range tc.want {
			if !strings.Contains(child, w) {
				t.Errorf("%s:\n child %q\n missing %q", tc.sql, child, w)
			}
		}
		for _, w := range tc.wantNot {
			if strings.Contains(child, w) {
				t.Errorf("%s:\n child %q\n must not contain %q", tc.sql, child, w)
			}
		}
	}
}

func TestShardPlanMergeDecomposition(t *testing.T) {
	// SELECT d, AVG(m), COUNT(DISTINCT k) GROUP BY d — child rows carry
	// [d, k, SUM(m), COUNT(m)], sub-grouped by (d, k).
	sp := planFor(t, "SELECT d, AVG(m), COUNT(DISTINCT k) FROM t GROUP BY d")
	parts := []ShardPart{
		{Groups: 3, Rows: [][]Value{
			{Str("a"), Int(1), Float(2), Int(2)},
			{Str("a"), Int(2), Float(4), Int(1)},
			{Str("b"), Int(1), Null(), Int(0)}, // all-NULL measure sub-group
		}},
		{Groups: 2, Rows: [][]Value{
			{Str("a"), Int(1), Float(6), Int(1)}, // k=1 repeats across shards: distinct must not double-count
			{Str("b"), Int(3), Float(10), Int(2)},
		}},
	}
	res, err := sp.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("merged rows = %+v", res.Rows)
	}
	// a: AVG = (2+4+6)/(2+1+1) = 3; distinct k = {1,2} = 2.
	if got := res.Rows[0]; got[0].S != "a" || got[1].F != 3 || got[2].I != 2 {
		t.Errorf("group a = %v", got)
	}
	// b: AVG = 10/2 = 5 (the NULL partial sum contributes nothing);
	// distinct k = {1,3} = 2.
	if got := res.Rows[1]; got[0].S != "b" || got[1].F != 5 || got[2].I != 2 {
		t.Errorf("group b = %v", got)
	}
	if res.Stats.Groups != 2 {
		t.Errorf("Groups = %d, want 2", res.Stats.Groups)
	}
}

func TestShardPlanMergeGlobalGroups(t *testing.T) {
	// Global aggregation: the merged Groups counter must distinguish "no
	// shard matched a row" (0) from "some shard did" (1), even though
	// children emit a synthetic row either way.
	sp := planFor(t, "SELECT COUNT(*) FROM t WHERE k > 100")
	res, err := sp.Merge([]ShardPart{
		{Groups: 0, Rows: [][]Value{{Int(0)}}},
		{Groups: 0, Rows: [][]Value{{Int(0)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Groups != 0 || len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Errorf("all-filtered merge: groups=%d rows=%v", res.Stats.Groups, res.Rows)
	}
	res, err = sp.Merge([]ShardPart{
		{Groups: 1, Rows: [][]Value{{Int(7)}}},
		{Groups: 0, Rows: [][]Value{{Int(0)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Groups != 1 || res.Rows[0][0].I != 7 {
		t.Errorf("partial-match merge: groups=%d rows=%v", res.Stats.Groups, res.Rows)
	}
}

func TestShardPlanMergeRejectsBadWidth(t *testing.T) {
	sp := planFor(t, "SELECT d, COUNT(*) FROM t GROUP BY d")
	if _, err := sp.Merge([]ShardPart{{Rows: [][]Value{{Str("a")}}}}); err == nil {
		t.Error("narrow child row should be rejected")
	}
}
