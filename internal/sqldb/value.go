// Package sqldb implements an embedded, in-memory, SQL-compliant database
// engine that serves as the substrate underneath the SeeDB middleware.
//
// The engine supports two physical layouts that mirror the "ROW" and "COL"
// systems in the SeeDB paper's evaluation (Section 5):
//
//   - RowStore: row-oriented storage where each tuple is contiguous in
//     memory. A scan pays the full tuple width regardless of how many
//     columns the query touches.
//   - ColStore: column-oriented storage with typed column vectors and
//     dictionary-encoded strings. A scan touches only referenced columns.
//
// The SQL dialect covers the query class SeeDB generates: single-table
// SELECT with WHERE predicates, expression GROUP BY (including CASE
// expressions, used to combine target and reference views into one query),
// the aggregates COUNT, SUM, AVG, MIN and MAX, ORDER BY and LIMIT.
//
// Queries may additionally be executed against a half-open row range
// ([lo, hi)) of the fact table, which is how SeeDB's phased execution
// framework processes the i-th of n partitions, and with intra-query
// scan parallelism (ExecOptions.Workers), which engages the parallel
// vectorized fast path in vexec.go for eligible column-store queries:
// dictionary/bool/int/float group keys become small integer ids
// (int/float via runtime value dictionaries), and WHERE / CASE-flag
// predicates of common shape compile into selection-vector kernels
// (predsel.go) with per-row closures only for residual conjuncts.
// Executions report why the fast path declined
// (ExecStats.FallbackReason) and how predicates ran
// (ExecStats.SelectionKernels / ResidualPredicates).
//
// The recommendation engine does not import this package directly: it
// reaches it through the backend seam (internal/backend's Embedded
// adapter), and internal/sqldriver additionally re-exports this engine
// through database/sql so external-store code paths can be exercised
// in-process. See docs/ARCHITECTURE.md for how the layers compose.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
)

// ValueKind discriminates the runtime type of a Value.
type ValueKind uint8

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns a human-readable name for the kind.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is the engine's runtime scalar. It is a compact tagged union: the
// active field is selected by Kind. Values are passed by value everywhere;
// they are never mutated after construction.
type Value struct {
	Kind ValueKind
	I    int64   // KindInt, KindBool (0/1)
	F    float64 // KindFloat
	S    string  // KindString
}

// Convenience constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy reports whether v is a true boolean. NULL and non-boolean values
// are not truthy, matching SQL's three-valued WHERE semantics where only
// TRUE passes a filter.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// AsFloat coerces numeric values to float64. It returns ok=false for NULL
// and string values.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64, truncating floats.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.Kind {
	case KindInt, KindBool:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// String renders the value the way the engine prints result rows.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports SQL equality between two values. NULL never equals
// anything, including NULL (use IsNull for IS NULL semantics). Numeric
// values compare across int/float/bool kinds.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	if v.Kind == KindString || o.Kind == KindString {
		return v.Kind == o.Kind && v.S == o.S
	}
	vf, _ := v.AsFloat()
	of, _ := o.AsFloat()
	return vf == of
}

// Compare orders two non-NULL values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything (returned as -1 against non-NULL), matching
// NULLS FIRST ordering. Strings compare lexicographically; numerics
// compare numerically across kinds.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull && o.Kind == KindNull {
		return 0
	}
	if v.Kind == KindNull {
		return -1
	}
	if o.Kind == KindNull {
		return 1
	}
	if v.Kind == KindString && o.Kind == KindString {
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	}
	vf, vok := v.AsFloat()
	of, ook := o.AsFloat()
	if !vok || !ook {
		// Mixed string/numeric comparison: order by kind to stay total.
		if v.Kind < o.Kind {
			return -1
		}
		if v.Kind > o.Kind {
			return 1
		}
		return 0
	}
	switch {
	case vf < of:
		return -1
	case vf > of:
		return 1
	default:
		return 0
	}
}

// AppendKey appends the value's injective group-key encoding to dst —
// the same encoding the executors group rows and count distinct values
// by — so out-of-package mergers (e.g. the shard router's statistics
// union) agree with the embedded engine on value identity, bit for bit
// (float payload bits included).
func (v Value) AppendKey(dst []byte) []byte { return v.appendKey(dst) }

// appendKey appends a self-delimiting binary encoding of v to dst. The
// encoding is injective per kind, so it can serve as a hash-aggregation
// group key.
func (v Value) appendKey(dst []byte) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInt, KindBool:
		u := uint64(v.I)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case KindFloat:
		u := math.Float64bits(v.F)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case KindString:
		n := uint32(len(v.S))
		dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		dst = append(dst, v.S...)
	}
	return dst
}

// ColumnType is the declared type of a table column.
type ColumnType uint8

// Column types supported by the storage engines.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL name of the type.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// zeroValue returns the default Value for a column type (used when a
// column is absent from an insert).
func zeroValue(t ColumnType) Value {
	switch t {
	case TypeInt:
		return Int(0)
	case TypeFloat:
		return Float(0)
	case TypeString:
		return Str("")
	case TypeBool:
		return Bool(false)
	default:
		return Null()
	}
}

// coerce converts v to the column type t where a lossless or conventional
// conversion exists; it returns an error otherwise. NULL passes through.
func coerce(v Value, t ColumnType) (Value, error) {
	if v.Kind == KindNull {
		return v, nil
	}
	switch t {
	case TypeInt:
		if i, ok := v.AsInt(); ok {
			return Int(i), nil
		}
	case TypeFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	case TypeString:
		if v.Kind == KindString {
			return v, nil
		}
	case TypeBool:
		if v.Kind == KindBool || v.Kind == KindInt {
			return Bool(v.I != 0), nil
		}
	}
	return Null(), fmt.Errorf("sqldb: cannot store %s value %q in %s column", v.Kind, v.String(), t)
}
