package sqldb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, "hi"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueTruthy(t *testing.T) {
	if Null().Truthy() {
		t.Error("NULL must not be truthy")
	}
	if !Bool(true).Truthy() || Bool(false).Truthy() {
		t.Error("bool truthiness wrong")
	}
	if !Int(1).Truthy() || Int(0).Truthy() {
		t.Error("int truthiness wrong")
	}
	if !Float(0.5).Truthy() || Float(0).Truthy() {
		t.Error("float truthiness wrong")
	}
	if Str("x").Truthy() {
		t.Error("strings are not truthy")
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL never equals a value")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("3 = 3.0 should hold across kinds")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 = 3.5 must be false")
	}
	if Int(1).Equal(Str("1")) {
		t.Error("numeric never equals string")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality wrong")
	}
	if !Bool(true).Equal(Int(1)) {
		t.Error("true = 1 should hold (bool is numeric 0/1)")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Float(a).Compare(Float(b)) == -Float(b).Compare(Float(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyEncodingInjectiveProperty(t *testing.T) {
	// Distinct values must encode to distinct group keys.
	f := func(a, b int64) bool {
		ka := string(Int(a).appendKey(nil))
		kb := string(Int(b).appendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		ka := string(Str(a).appendKey(nil))
		kb := string(Str(b).appendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyEncodingKindTagged(t *testing.T) {
	// The same bits under different kinds must not collide.
	a := string(Int(1).appendKey(nil))
	b := string(Bool(true).appendKey(nil))
	if a == b {
		t.Error("Int(1) and Bool(true) keys must differ")
	}
	c := string(Str("").appendKey(nil))
	d := string(Null().appendKey(nil))
	if c == d {
		t.Error("empty string and NULL keys must differ")
	}
}

func TestValueAsFloatAsInt(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Error("Int→Float failed")
	}
	if i, ok := Float(7.9).AsInt(); !ok || i != 7 {
		t.Error("Float→Int should truncate")
	}
	if _, ok := Str("7").AsFloat(); ok {
		t.Error("Str must not coerce to float")
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("NULL must not coerce")
	}
}

func TestCoerce(t *testing.T) {
	if v, err := coerce(Int(3), TypeFloat); err != nil || v.Kind != KindFloat || v.F != 3 {
		t.Errorf("coerce int→float = %v, %v", v, err)
	}
	if v, err := coerce(Float(3.7), TypeInt); err != nil || v.I != 3 {
		t.Errorf("coerce float→int = %v, %v", v, err)
	}
	if _, err := coerce(Str("x"), TypeInt); err == nil {
		t.Error("coerce string→int must fail")
	}
	if v, err := coerce(Null(), TypeInt); err != nil || !v.IsNull() {
		t.Error("NULL must coerce to any type")
	}
	if v, err := coerce(Int(1), TypeBool); err != nil || !v.Truthy() {
		t.Errorf("coerce 1→bool = %v, %v", v, err)
	}
}

func TestColumnTypeAndKindStrings(t *testing.T) {
	if TypeInt.String() != "INT" || TypeString.String() != "TEXT" {
		t.Error("ColumnType.String wrong")
	}
	if KindFloat.String() != "FLOAT" {
		t.Error("ValueKind.String wrong")
	}
}
