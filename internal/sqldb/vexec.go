package sqldb

// Parallel vectorized aggregation fast path.
//
// The dominant SeeDB query shape — GROUP BY one or more dimension columns
// (plus, for the combined target/reference rewrite, a CASE-WHEN flag over
// the target predicate), aggregating SUM/COUNT/AVG/MIN/MAX over measure
// columns — spends almost all of its time in the row interpreter's
// per-row closure calls, group-key string encoding and map lookups. This
// file replaces that inner loop for column-store tables:
//
//   - The row range [lo, hi) is partitioned into one contiguous chunk per
//     worker. Chunk boundaries are a pure function of (lo, hi, workers),
//     so execution is deterministic regardless of scheduling.
//   - Each worker scans the referenced column vectors directly. Group
//     identity is a small integer — the mixed radix combination of
//     per-column dictionary codes (strings), tri-state bool codes and the
//     CASE flag — instead of a per-row encoded string key. Dense group-id
//     spaces use a flat lookup table; larger ones fall back to an integer
//     map, never a string map.
//   - Workers accumulate private aggState tables (first-seen order within
//     the chunk) that merge in chunk order, which reproduces exactly the
//     first-seen group order of a sequential scan. Results are therefore
//     identical to the serial interpreter, with one caveat: SUM/AVG
//     reassociate floating-point addition across chunks, so float
//     aggregates can differ in final ulps when partial sums are inexact.
//   - Context cancellation checks run every checkEvery rows inside each
//     worker loop, so large scans stay cancellable.
//
// Queries outside the shape (row stores, non-column group keys or
// aggregate arguments, DISTINCT aggregates, string MIN/MAX, group-id
// spaces that overflow) fall back to the serial interpreter. WHERE,
// HAVING, ORDER BY, projection, DISTINCT, LIMIT and OFFSET need no
// analysis here: WHERE evaluates row-at-a-time inside the workers, and
// the rest operate on the finalized groups, shared with the serial path.

import (
	"context"
	"runtime"
	"sync"
)

// denseGroupIDCap bounds the per-worker flat lookup table (entries are
// int32, so this is 256 KiB per worker). Larger id spaces use a map.
const denseGroupIDCap = 1 << 16

// maxGroupIDSpace bounds the total mixed-radix group-id space; beyond it
// the fast path declines (runtime fallback to the interpreter).
const maxGroupIDSpace = 1 << 40

// maxWorkersPerQuery caps effective scan workers at a small multiple of
// GOMAXPROCS: more workers than cores only adds partial tables to merge,
// and the cap keeps an absurd ExecOptions.Workers (e.g. forwarded from
// an untrusted request knob) from spawning a goroutine per row.
func maxWorkersPerQuery() int { return 4 * runtime.GOMAXPROCS(0) }

// vecGroupKind classifies one GROUP BY expression for the fast path.
type vecGroupKind uint8

const (
	// vecGroupDict is a dictionary-encoded string column; ids are
	// 0 = NULL, code+1 otherwise.
	vecGroupDict vecGroupKind = iota
	// vecGroupBool is a bool column; ids are 0 = NULL, 1 = false,
	// 2 = true.
	vecGroupBool
	// vecGroupFlag is CASE WHEN pred THEN a ELSE b END over integer
	// literals (SeeDB's combined target/reference flag); ids are
	// 0 = else-arm, 1 = then-arm.
	vecGroupFlag
)

// vecGroup is one analyzed GROUP BY column.
type vecGroup struct {
	kind         vecGroupKind
	col          int    // table column (dict/bool)
	pred         evalFn // flag predicate (flag only)
	thenV, elseV int64  // flag arm values (flag only)
}

// vecInfo is the compile-time fast-path analysis of a grouped plan. The
// aggregate slots reuse plan.aggs (argCol/argType are validated here).
type vecInfo struct {
	groups []vecGroup
}

// vectorizeGrouped analyzes a grouped statement and returns the fast-path
// info, or nil when any part of the query shape is ineligible.
func vectorizeGrouped(stmt *SelectStmt, p *plan, schema *Schema) *vecInfo {
	v := &vecInfo{groups: make([]vecGroup, 0, len(stmt.GroupBy))}
	for _, g := range stmt.GroupBy {
		switch e := g.(type) {
		case *ColumnExpr:
			idx, ok := schema.Lookup(e.Name)
			if !ok {
				return nil
			}
			switch schema.Column(idx).Type {
			case TypeString:
				v.groups = append(v.groups, vecGroup{kind: vecGroupDict, col: idx})
			case TypeBool:
				v.groups = append(v.groups, vecGroup{kind: vecGroupBool, col: idx})
			default:
				// Int/float group keys have no dictionary to derive dense
				// ids from; leave them to the interpreter.
				return nil
			}
		case *CaseExpr:
			if len(e.Whens) != 1 || e.Else == nil || IsAggregate(e.Whens[0].Cond) {
				return nil
			}
			thenLit, ok1 := e.Whens[0].Then.(*LiteralExpr)
			elseLit, ok2 := e.Else.(*LiteralExpr)
			if !ok1 || !ok2 || thenLit.Val.Kind != KindInt || elseLit.Val.Kind != KindInt {
				return nil
			}
			if thenLit.Val.I == elseLit.Val.I {
				// Both arms produce the same group key value; the two flag
				// ids would split what the interpreter treats as one group.
				return nil
			}
			pred, err := compileScalar(e.Whens[0].Cond, schema)
			if err != nil {
				return nil
			}
			v.groups = append(v.groups, vecGroup{
				kind: vecGroupFlag, pred: pred,
				thenV: thenLit.Val.I, elseV: elseLit.Val.I,
			})
		default:
			return nil
		}
	}
	for i := range p.aggs {
		a := &p.aggs[i]
		if a.distinct {
			return nil
		}
		switch a.kind {
		case aggCountStar:
		case aggCount:
			if a.argCol < 0 {
				return nil
			}
		case aggSum, aggAvg, aggMin, aggMax:
			if a.argCol < 0 {
				return nil
			}
			switch a.argType {
			case TypeInt, TypeFloat, TypeBool:
			default:
				// String MIN/MAX would need dictionary-order comparisons;
				// SUM/AVG over strings is a degenerate all-skip. Fall back.
				return nil
			}
		default:
			return nil
		}
	}
	return v
}

// vecPartial is one worker's accumulated chunk state: entries in the
// chunk's first-seen order, with the group id of each entry alongside.
type vecPartial struct {
	entries []*groupEntry
	gids    []uint64
	scanned int
}

// gidIndex maps combined group ids to entry slots (-1 = absent): a flat
// table when the id space is small, an integer map otherwise. Both the
// chunk scans and the merge use it, so group identity cannot drift
// between the two.
type gidIndex struct {
	dense  []int32
	sparse map[uint64]int32
}

// newGIDIndex sizes the index for the given id space.
func newGIDIndex(idSpace uint64) *gidIndex {
	if idSpace <= denseGroupIDCap {
		d := make([]int32, idSpace)
		for i := range d {
			d[i] = -1
		}
		return &gidIndex{dense: d}
	}
	return &gidIndex{sparse: make(map[uint64]int32)}
}

// get returns the slot for gid, or -1.
func (x *gidIndex) get(gid uint64) int32 {
	if x.dense != nil {
		return x.dense[gid]
	}
	if i, ok := x.sparse[gid]; ok {
		return i
	}
	return -1
}

// put records gid's slot.
func (x *gidIndex) put(gid uint64, idx int32) {
	if x.dense != nil {
		x.dense[gid] = idx
	} else {
		x.sparse[gid] = idx
	}
}

// run executes the fast path over [lo, hi) with opts.Workers workers. ran
// reports whether the fast path was applicable at runtime; when false the
// caller must use the serial interpreter.
func (v *vecInfo) run(p *plan, t *ColStore, opts ExecOptions, lo, hi int) (entries []*groupEntry, scanned, workers int, ran bool, err error) {
	lo, hi = clampRange(lo, hi, t.rows)

	// Mixed-radix layout of the combined group id. Cardinalities come
	// from the live table (dictionary sizes), so this is a runtime check.
	cards := make([]uint64, len(v.groups))
	strides := make([]uint64, len(v.groups))
	idSpace := uint64(1)
	for i, g := range v.groups {
		var card uint64
		switch g.kind {
		case vecGroupDict:
			card = uint64(len(t.cols[g.col].dict)) + 1 // +1 for NULL
		case vecGroupBool:
			card = 3
		case vecGroupFlag:
			card = 2
		}
		cards[i] = card
		strides[i] = idSpace
		if idSpace > maxGroupIDSpace/card {
			return nil, 0, 0, false, nil
		}
		idSpace *= card
	}

	workers = opts.Workers
	if max := maxWorkersPerQuery(); workers > max {
		workers = max
	}
	if n := hi - lo; workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// The same projection mask the serial scan would use, shared
	// read-only by every worker's filter/flag evaluations.
	wanted := t.wantedMask(p.scanCols)

	parts := make([]*vecPartial, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cLo := lo + w*(hi-lo)/workers
		cHi := lo + (w+1)*(hi-lo)/workers
		wg.Add(1)
		go func(w, cLo, cHi int) {
			defer wg.Done()
			parts[w], errs[w] = v.scanChunk(p, t, opts.Ctx, cLo, cHi, idSpace, strides, wanted)
		}(w, cLo, cHi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, 0, 0, false, e
		}
	}

	entries, scanned = v.merge(p, parts, idSpace)
	return entries, scanned, workers, true, nil
}

// scanChunk accumulates one worker's contiguous row chunk.
func (v *vecInfo) scanChunk(p *plan, t *ColStore, ctx context.Context, lo, hi int, idSpace uint64, strides []uint64, wanted []bool) (*vecPartial, error) {
	part := &vecPartial{}
	index := newGIDIndex(idSpace)
	view := colRowView{t: t, wanted: wanted}
	// Hoist loop-invariant column-vector derivations out of the row loop.
	groupCols := make([]*columnVector, len(v.groups))
	for i, g := range v.groups {
		if g.kind != vecGroupFlag {
			groupCols[i] = &t.cols[g.col]
		}
	}
	aggCols := make([]*columnVector, len(p.aggs))
	for ai := range p.aggs {
		if p.aggs[ai].argCol >= 0 {
			aggCols[ai] = &t.cols[p.aggs[ai].argCol]
		}
	}
	n := 0
	for r := lo; r < hi; r++ {
		n++
		if n%checkEvery == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if p.filter != nil {
			view.row = r
			if !p.filter(view).Truthy() {
				continue
			}
		}

		gid := uint64(0)
		for i := range v.groups {
			g := &v.groups[i]
			var id uint64
			switch g.kind {
			case vecGroupDict:
				c := groupCols[i]
				if c.nulls == nil || !c.nulls[r] {
					id = uint64(c.codes[r]) + 1
				}
			case vecGroupBool:
				c := groupCols[i]
				switch {
				case c.nulls != nil && c.nulls[r]:
					id = 0
				case c.ints[r] != 0:
					id = 2
				default:
					id = 1
				}
			case vecGroupFlag:
				view.row = r
				if g.pred(view).Truthy() {
					id = 1
				}
			}
			gid += id * strides[i]
		}

		idx := index.get(gid)
		if idx < 0 {
			idx = int32(len(part.entries))
			part.entries = append(part.entries, &groupEntry{
				keys:   v.decodeKeys(t, gid, strides),
				states: make([]aggState, len(p.aggs)),
			})
			part.gids = append(part.gids, gid)
			index.put(gid, idx)
		}

		states := part.entries[idx].states
		for ai := range p.aggs {
			a := &p.aggs[ai]
			s := &states[ai]
			c := aggCols[ai]
			switch a.kind {
			case aggCountStar:
				s.count++
			case aggCount:
				if c.nulls == nil || !c.nulls[r] {
					s.count++
				}
			case aggSum, aggAvg:
				if c.nulls != nil && c.nulls[r] {
					break
				}
				s.count++
				if a.argType == TypeFloat {
					s.sum += c.flts[r]
				} else {
					s.sum += float64(c.ints[r])
				}
			case aggMin:
				if c.nulls != nil && c.nulls[r] {
					break
				}
				cand := colNumValue(c, a.argType, r)
				if !s.seen || cand.Compare(s.min) < 0 {
					s.min = cand
					s.seen = true
				}
			case aggMax:
				if c.nulls != nil && c.nulls[r] {
					break
				}
				cand := colNumValue(c, a.argType, r)
				if !s.seen || cand.Compare(s.max) > 0 {
					s.max = cand
					s.seen = true
				}
			}
		}
	}
	part.scanned = n
	return part, nil
}

// decodeKeys reconstructs the group-key Values a serial scan would have
// produced for the row(s) behind a combined group id.
func (v *vecInfo) decodeKeys(t *ColStore, gid uint64, strides []uint64) []Value {
	keys := make([]Value, len(v.groups))
	for i := range v.groups {
		g := &v.groups[i]
		var span uint64
		switch g.kind {
		case vecGroupDict:
			span = uint64(len(t.cols[g.col].dict)) + 1
		case vecGroupBool:
			span = 3
		case vecGroupFlag:
			span = 2
		}
		id := (gid / strides[i]) % span
		switch g.kind {
		case vecGroupDict:
			if id == 0 {
				keys[i] = Null()
			} else {
				keys[i] = Str(t.cols[g.col].dict[id-1])
			}
		case vecGroupBool:
			switch id {
			case 0:
				keys[i] = Null()
			case 1:
				keys[i] = Bool(false)
			default:
				keys[i] = Bool(true)
			}
		case vecGroupFlag:
			if id == 1 {
				keys[i] = Int(g.thenV)
			} else {
				keys[i] = Int(g.elseV)
			}
		}
	}
	return keys
}

// merge folds worker partials together in chunk order. Because chunks are
// contiguous and ordered, appending each chunk's unseen groups in its own
// first-seen order reproduces the first-seen order of a sequential scan.
func (v *vecInfo) merge(p *plan, parts []*vecPartial, idSpace uint64) ([]*groupEntry, int) {
	if len(parts) == 1 {
		return parts[0].entries, parts[0].scanned
	}
	index := newGIDIndex(idSpace)
	var out []*groupEntry
	scanned := 0
	for _, part := range parts {
		scanned += part.scanned
		for j, e := range part.entries {
			gid := part.gids[j]
			idx := index.get(gid)
			if idx < 0 {
				idx = int32(len(out))
				out = append(out, e)
				index.put(gid, idx)
				continue
			}
			dst := out[idx].states
			for ai := range p.aggs {
				dst[ai].merge(&p.aggs[ai], &e.states[ai])
			}
		}
	}
	return out, scanned
}

// colNumValue builds the Value a colRowView would return for a non-NULL
// numeric cell, reading the typed vector directly.
func colNumValue(c *columnVector, typ ColumnType, r int) Value {
	switch typ {
	case TypeInt:
		return Int(c.ints[r])
	case TypeBool:
		return Bool(c.ints[r] != 0)
	default:
		return Float(c.flts[r])
	}
}
