package sqldb

// Parallel vectorized aggregation fast path.
//
// The dominant SeeDB query shape — GROUP BY one or more dimension columns
// (plus, for the combined target/reference rewrite, a CASE-WHEN flag over
// the target predicate), aggregating SUM/COUNT/AVG/MIN/MAX over measure
// columns — spends almost all of its time in the row interpreter's
// per-row closure calls, group-key string encoding and map lookups. This
// file replaces that inner loop for column-store tables:
//
//   - The row range [lo, hi) is partitioned into one contiguous chunk per
//     worker. Chunk boundaries are a pure function of (lo, hi, workers),
//     so execution is deterministic regardless of scheduling.
//   - Each worker scans the referenced column vectors directly, in blocks
//     of selBlockRows rows. WHERE predicates and CASE-flag predicates of
//     compilable shape run as selection kernels over each block (see
//     predsel.go); conjuncts outside the kernel grammar evaluate per row
//     through their original closures, restricted to rows the kernels
//     kept (the hybrid residual filter) — a query never falls back whole
//     because one conjunct is exotic.
//   - Group identity is a small integer — the mixed-radix combination of
//     per-column dictionary codes (strings), tri-state bool codes, the
//     CASE flag, and runtime value-dictionary codes for int/float
//     dimensions — instead of a per-row encoded string key. Numeric
//     dimensions get a per-worker dictionary built during the scan
//     (bounded by the query's share of maxGroupIDSpace); the merge
//     remaps worker-local codes onto a global dictionary. Dense group-id
//     spaces use a flat lookup table; larger ones an integer map, never
//     a string map.
//   - MIN/MAX accumulate through typed comparisons on the column vectors
//     (no Value construction per row); SUM/COUNT/AVG accumulate into
//     typed fields as before.
//   - Workers accumulate private aggState tables (first-seen order within
//     the chunk) that merge in chunk order, which reproduces exactly the
//     first-seen group order of a sequential scan. Results are therefore
//     identical to the serial interpreter, with one caveat family:
//     SUM/AVG reassociate floating-point addition across chunks, so
//     float aggregates can differ in final ulps when partial sums are
//     inexact, and on data containing NaN the non-transitive Compare
//     semantics (NaN "equals" everything) make MIN/MAX and NaN payload
//     bits order-dependent across chunk splits. Selection kernels
//     reproduce the interpreter's NaN comparison semantics exactly
//     (see cmpFloat), so row selection never diverges.
//   - Context cancellation checks run every block inside each worker
//     loop, so large scans stay cancellable.
//
// Queries outside the shape (row stores, expression group keys or
// aggregate arguments, DISTINCT aggregates, string MIN/MAX, group-id
// spaces that overflow) fall back to the serial interpreter, and the
// reason is reported in ExecStats.FallbackReason. HAVING, ORDER BY,
// projection, DISTINCT, LIMIT and OFFSET need no analysis here: they
// operate on the finalized groups, shared with the serial path.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
)

// denseGroupIDCap bounds the per-worker flat lookup table (entries are
// int32, so this is 256 KiB per worker). Larger id spaces use a map.
const denseGroupIDCap = 1 << 16

// maxGroupIDSpace bounds the total mixed-radix group-id space; beyond it
// the fast path declines (runtime fallback to the interpreter).
const maxGroupIDSpace = 1 << 40

// maxNumDictRadix caps the per-column radix reserved for a runtime
// numeric group-key dictionary: a dimension with more distinct values
// than this is effectively continuous and belongs to the interpreter.
const maxNumDictRadix = 1 << 20

// selBlockRows is the selection-kernel block size: predicates evaluate
// over blocks of this many rows, so the per-worker selection bitmaps
// stay L1-resident however large the chunk is.
const selBlockRows = 1024

// Fast-path fallback reasons, reported via ExecStats.FallbackReason and
// aggregated per reason by the engine's Metrics.
const (
	fallbackSerialExec    = "serial execution"
	fallbackNonGrouped    = "non-grouped query"
	fallbackRowStore      = "row-store table"
	fallbackIDSpace       = "id-space overflow"
	fallbackNonColumnKey  = "non-column group key"
	fallbackCaseShape     = "non-flag CASE group key"
	fallbackDistinctAgg   = "distinct agg"
	fallbackExprAgg       = "expression agg argument"
	fallbackNonNumericAgg = "non-numeric agg argument"
)

// errGroupIDSpace signals a mid-scan group-id-space overflow (a runtime
// numeric dictionary outgrew its radix); the fast path declines and the
// caller retries on the serial interpreter.
var errGroupIDSpace = errors.New("sqldb: group-id space overflow")

// maxWorkersPerQuery caps effective scan workers at a small multiple of
// GOMAXPROCS: more workers than cores only adds partial tables to merge,
// and the cap keeps an absurd ExecOptions.Workers (e.g. forwarded from
// an untrusted request knob) from spawning a goroutine per row.
func maxWorkersPerQuery() int { return 4 * runtime.GOMAXPROCS(0) }

// vecGroupKind classifies one GROUP BY expression for the fast path.
type vecGroupKind uint8

const (
	// vecGroupDict is a dictionary-encoded string column; ids are
	// 0 = NULL, code+1 otherwise.
	vecGroupDict vecGroupKind = iota
	// vecGroupBool is a bool column; ids are 0 = NULL, 1 = false,
	// 2 = true.
	vecGroupBool
	// vecGroupNum is an int or float column; ids are 0 = NULL, else a
	// runtime value-dictionary code + 1 (per worker, remapped at merge).
	vecGroupNum
	// vecGroupFlag is CASE WHEN pred THEN a ELSE b END over integer
	// literals (SeeDB's combined target/reference flag); ids are
	// 0 = else-arm, 1 = then-arm.
	vecGroupFlag
)

// vecGroup is one analyzed GROUP BY column.
type vecGroup struct {
	kind         vecGroupKind
	col          int        // table column (dict/bool/num)
	typ          ColumnType // column type (num)
	pred         evalFn     // flag predicate closure (flag only)
	flagSel      *selProg   // compiled flag predicate, nil → closure only
	thenV, elseV int64      // flag arm values (flag only)
}

// vecInfo is the compile-time fast-path analysis of a grouped plan. The
// aggregate slots reuse plan.aggs (argCol/argType are validated here).
type vecInfo struct {
	groups []vecGroup
	// filterSel is the compiled WHERE predicate (nil when the query has
	// no WHERE clause or its compilation failed defensively).
	filterSel *selProg
	// numGroups indexes the vecGroupNum entries of groups.
	numGroups []int
}

// vectorizeGrouped analyzes a grouped statement and returns the
// fast-path info, or nil and the reason when any part of the query shape
// is ineligible.
func vectorizeGrouped(stmt *SelectStmt, p *plan, schema *Schema) (*vecInfo, string) {
	v := &vecInfo{groups: make([]vecGroup, 0, len(stmt.GroupBy))}
	for _, g := range stmt.GroupBy {
		switch e := g.(type) {
		case *ColumnExpr:
			idx, ok := schema.Lookup(e.Name)
			if !ok {
				return nil, fallbackNonColumnKey
			}
			switch typ := schema.Column(idx).Type; typ {
			case TypeString:
				v.groups = append(v.groups, vecGroup{kind: vecGroupDict, col: idx})
			case TypeBool:
				v.groups = append(v.groups, vecGroup{kind: vecGroupBool, col: idx})
			default: // TypeInt, TypeFloat
				v.numGroups = append(v.numGroups, len(v.groups))
				v.groups = append(v.groups, vecGroup{kind: vecGroupNum, col: idx, typ: typ})
			}
		case *CaseExpr:
			if len(e.Whens) != 1 || e.Else == nil || IsAggregate(e.Whens[0].Cond) {
				return nil, fallbackCaseShape
			}
			thenLit, ok1 := e.Whens[0].Then.(*LiteralExpr)
			elseLit, ok2 := e.Else.(*LiteralExpr)
			if !ok1 || !ok2 || thenLit.Val.Kind != KindInt || elseLit.Val.Kind != KindInt {
				return nil, fallbackCaseShape
			}
			if thenLit.Val.I == elseLit.Val.I {
				// Both arms produce the same group key value; the two flag
				// ids would split what the interpreter treats as one group.
				return nil, fallbackCaseShape
			}
			pred, err := compileScalar(e.Whens[0].Cond, schema)
			if err != nil {
				return nil, fallbackCaseShape
			}
			flagSel, err := compileSelection(e.Whens[0].Cond, schema)
			if err != nil {
				flagSel = nil // defensive: closure path still works
			}
			v.groups = append(v.groups, vecGroup{
				kind: vecGroupFlag, pred: pred, flagSel: flagSel,
				thenV: thenLit.Val.I, elseV: elseLit.Val.I,
			})
		default:
			return nil, fallbackNonColumnKey
		}
	}
	for i := range p.aggs {
		a := &p.aggs[i]
		if a.distinct {
			return nil, fallbackDistinctAgg
		}
		switch a.kind {
		case aggCountStar:
		case aggCount:
			if a.argCol < 0 {
				return nil, fallbackExprAgg
			}
		case aggSum, aggAvg, aggMin, aggMax:
			if a.argCol < 0 {
				return nil, fallbackExprAgg
			}
			switch a.argType {
			case TypeInt, TypeFloat, TypeBool:
			default:
				// String MIN/MAX would need dictionary-order comparisons;
				// SUM/AVG over strings is a degenerate all-skip. Fall back.
				return nil, fallbackNonNumericAgg
			}
		default:
			return nil, fallbackDistinctAgg
		}
	}
	if stmt.Where != nil {
		sel, err := compileSelection(stmt.Where, schema)
		if err == nil {
			v.filterSel = sel
		}
	}
	return v, ""
}

// numDict is one worker's runtime value dictionary for a numeric group
// column: value identity bits → 1-based code (0 is reserved for NULL),
// bounded by the column's radix in the mixed-radix id space.
type numDict struct {
	ids   map[uint64]uint32
	order []uint64 // bits in first-seen order; code = index+1
	radix uint64   // codes must stay < radix

	lastBits uint64 // one-entry cache: runs of equal values skip the map
	lastID   uint32
	hasLast  bool
}

// newNumDict creates an empty dictionary with the given radix.
func newNumDict(radix uint64) *numDict {
	return &numDict{ids: make(map[uint64]uint32), radix: radix}
}

// idFor returns the code for the value bits, allocating the next code on
// first sight. ok=false reports radix overflow.
func (d *numDict) idFor(bits uint64) (uint32, bool) {
	if d.hasLast && d.lastBits == bits {
		return d.lastID, true
	}
	id, ok := d.ids[bits]
	if !ok {
		next := uint64(len(d.order)) + 1
		if next >= d.radix {
			return 0, false
		}
		id = uint32(next)
		d.ids[bits] = id
		d.order = append(d.order, bits)
	}
	d.lastBits, d.lastID, d.hasLast = bits, id, true
	return id, true
}

// vecPartial is one worker's accumulated chunk state: entries in the
// chunk's first-seen order, with the group id of each entry alongside,
// plus the worker-local numeric dictionaries the merge remaps from.
type vecPartial struct {
	entries []*groupEntry
	gids    []uint64
	dicts   []*numDict // indexed like vecInfo.groups; nil for non-num
	scanned int
}

// gidIndex maps combined group ids to entry slots (-1 = absent): a flat
// table when the id space is small, an integer map otherwise. Both the
// chunk scans and the merge use it, so group identity cannot drift
// between the two.
type gidIndex struct {
	dense  []int32
	sparse map[uint64]int32
}

// newGIDIndex sizes the index for the given id space.
func newGIDIndex(idSpace uint64) *gidIndex {
	if idSpace <= denseGroupIDCap {
		d := make([]int32, idSpace)
		for i := range d {
			d[i] = -1
		}
		return &gidIndex{dense: d}
	}
	return &gidIndex{sparse: make(map[uint64]int32)}
}

// get returns the slot for gid, or -1.
func (x *gidIndex) get(gid uint64) int32 {
	if x.dense != nil {
		return x.dense[gid]
	}
	if i, ok := x.sparse[gid]; ok {
		return i
	}
	return -1
}

// put records gid's slot.
func (x *gidIndex) put(gid uint64, idx int32) {
	if x.dense != nil {
		x.dense[gid] = idx
	} else {
		x.sparse[gid] = idx
	}
}

// vecRun is the outcome of one fast-path execution.
type vecRun struct {
	entries   []*groupEntry
	scanned   int
	workers   int
	kernels   int // selection kernels bound for this execution
	residuals int // predicate conjuncts left on the closure path
}

// nthRootFloor returns the largest r with r^n <= b (n >= 1).
func nthRootFloor(b uint64, n int) uint64 {
	if n == 1 {
		return b
	}
	r := uint64(math.Pow(float64(b), 1/float64(n)))
	for r > 0 && !powFits(r, n, b) {
		r--
	}
	for powFits(r+1, n, b) {
		r++
	}
	return r
}

// powFits reports r^n <= b without overflowing.
func powFits(r uint64, n int, b uint64) bool {
	if r == 0 {
		return true
	}
	p := uint64(1)
	for i := 0; i < n; i++ {
		if p > b/r {
			return false
		}
		p *= r
	}
	return p <= b
}

// run executes the fast path over [lo, hi) with opts.Workers workers.
// ran reports whether the fast path was applicable at runtime; when
// false the caller must use the serial interpreter.
func (v *vecInfo) run(p *plan, t *ColStore, opts ExecOptions, lo, hi int) (res *vecRun, ran bool, err error) {
	lo, hi = clampRange(lo, hi, t.rows)

	// Mixed-radix layout of the combined group id. Static cardinalities
	// come from the live table (dictionary sizes); numeric group columns
	// share the remaining id-space budget as their runtime-dictionary
	// radix. This is a runtime check on every execution.
	cards := make([]uint64, len(v.groups))
	staticSpace := uint64(1)
	for i, g := range v.groups {
		var card uint64
		switch g.kind {
		case vecGroupDict:
			card = uint64(len(t.cols[g.col].dict)) + 1 // +1 for NULL
		case vecGroupBool:
			card = 3
		case vecGroupFlag:
			card = 2
		case vecGroupNum:
			continue // assigned from the leftover budget below
		}
		cards[i] = card
		if staticSpace > maxGroupIDSpace/card {
			return nil, false, nil
		}
		staticSpace *= card
	}
	if n := len(v.numGroups); n > 0 {
		radix := nthRootFloor(maxGroupIDSpace/staticSpace, n)
		if radix > maxNumDictRadix {
			radix = maxNumDictRadix
		}
		if radix < 2 {
			return nil, false, nil
		}
		for _, i := range v.numGroups {
			cards[i] = radix
		}
	}
	strides := make([]uint64, len(v.groups))
	idSpace := uint64(1)
	for i, card := range cards {
		strides[i] = idSpace
		if idSpace > maxGroupIDSpace/card {
			return nil, false, nil
		}
		idSpace *= card
	}

	workers := opts.Workers
	if max := maxWorkersPerQuery(); workers > max {
		workers = max
	}
	if n := hi - lo; workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Bind the compiled predicates to the live table once; the bound
	// programs (dictionary match tables included) are shared read-only by
	// every worker.
	res = &vecRun{workers: workers}
	var boundFilter *boundSel
	boundFlags := make([]*boundSel, len(v.groups))
	if !opts.NoSelectionKernels {
		// An all-residual program would just re-run the whole predicate
		// through closures with bitmap bookkeeping on top; bind only when
		// at least one conjunct actually compiled. Residual conjuncts are
		// counted either way — they run on the closure path regardless of
		// whether that is per-conjunct (bound) or whole-predicate.
		if p.filter != nil && v.filterSel != nil {
			res.residuals += v.filterSel.residualCount()
			if v.filterSel.kernelCount() > 0 {
				boundFilter = v.filterSel.bind(t)
				res.kernels += v.filterSel.kernelCount()
			}
		}
		for i := range v.groups {
			g := &v.groups[i]
			if g.kind != vecGroupFlag || g.flagSel == nil {
				continue
			}
			res.residuals += g.flagSel.residualCount()
			if g.flagSel.kernelCount() > 0 {
				boundFlags[i] = g.flagSel.bind(t)
				res.kernels += g.flagSel.kernelCount()
			}
		}
	}

	// The same projection mask the serial scan would use, shared
	// read-only by every worker's residual/closure evaluations.
	wanted := t.wantedMask(p.scanCols)

	parts := make([]*vecPartial, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cLo := lo + w*(hi-lo)/workers
		cHi := lo + (w+1)*(hi-lo)/workers
		wg.Add(1)
		go func(w, cLo, cHi int) {
			defer wg.Done()
			parts[w], errs[w] = v.scanChunk(p, t, opts.Ctx, cLo, cHi, cards, strides, wanted, boundFilter, boundFlags)
		}(w, cLo, cHi)
	}
	wg.Wait()
	for _, e := range errs {
		if errors.Is(e, errGroupIDSpace) {
			return nil, false, nil
		}
		if e != nil {
			return nil, false, e
		}
	}

	entries, scanned, ok := v.merge(p, parts, cards, strides, idSpace)
	if !ok {
		return nil, false, nil
	}
	res.entries, res.scanned = entries, scanned
	return res, true, nil
}

// scanChunk accumulates one worker's contiguous row chunk, block by
// block: selection kernels evaluate the compilable predicate conjuncts
// over each block, then the row loop visits only the selected rows
// (applying residual conjuncts per row).
func (v *vecInfo) scanChunk(p *plan, t *ColStore, ctx context.Context, lo, hi int, cards, strides []uint64, wanted []bool, boundFilter *boundSel, boundFlags []*boundSel) (*vecPartial, error) {
	part := &vecPartial{}
	index := newGIDIndex(idSpaceOf(cards))
	view := colRowView{t: t, wanted: wanted}

	// Hoist loop-invariant column-vector derivations out of the row loop.
	groupCols := make([]*columnVector, len(v.groups))
	for i, g := range v.groups {
		if g.kind != vecGroupFlag {
			groupCols[i] = &t.cols[g.col]
		}
	}
	if len(v.numGroups) > 0 {
		part.dicts = make([]*numDict, len(v.groups))
		for _, i := range v.numGroups {
			part.dicts[i] = newNumDict(cards[i])
		}
	}
	aggCols := make([]*columnVector, len(p.aggs))
	for ai := range p.aggs {
		if p.aggs[ai].argCol >= 0 {
			aggCols[ai] = &t.cols[p.aggs[ai].argCol]
		}
	}

	// Per-worker selection bitmaps, reused across blocks.
	sel := make([]bool, selBlockRows)
	scratch := make([]bool, selBlockRows)
	var flagSels [][]bool
	for i := range v.groups {
		if boundFlags[i] != nil {
			if flagSels == nil {
				flagSels = make([][]bool, len(v.groups))
			}
			flagSels[i] = make([]bool, selBlockRows)
		}
	}
	useFilterKernels := boundFilter != nil

	for blockLo := lo; blockLo < hi; blockLo += selBlockRows {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		blockHi := blockLo + selBlockRows
		if blockHi > hi {
			blockHi = hi
		}
		n := blockHi - blockLo

		// The bitmap is only consulted when kernels are in play (flag
		// kernels seed from it too); skip the fill otherwise.
		if useFilterKernels || flagSels != nil {
			fillRange(sel, n)
		}
		if useFilterKernels {
			boundFilter.apply(blockLo, blockHi, sel[:n], scratch[:n])
		}
		for i := range v.groups {
			if boundFlags[i] == nil {
				continue
			}
			// Seed the flag bitmap from the filter selection so the flag
			// kernels skip rows the filter already rejected.
			fs := flagSels[i]
			copy(fs[:n], sel[:n])
			boundFlags[i].apply(blockLo, blockHi, fs[:n], scratch[:n])
		}

	rowLoop:
		for r := blockLo; r < blockHi; r++ {
			idx := r - blockLo
			if useFilterKernels {
				if !sel[idx] {
					continue
				}
				if len(boundFilter.residual) > 0 {
					view.row = r
					for _, fn := range boundFilter.residual {
						if !fn(view).Truthy() {
							continue rowLoop
						}
					}
				}
			} else if p.filter != nil {
				view.row = r
				if !p.filter(view).Truthy() {
					continue
				}
			}

			gid := uint64(0)
			for i := range v.groups {
				g := &v.groups[i]
				var id uint64
				switch g.kind {
				case vecGroupDict:
					c := groupCols[i]
					if c.nulls == nil || !c.nulls[r] {
						id = uint64(c.codes[r]) + 1
					}
				case vecGroupBool:
					c := groupCols[i]
					switch {
					case c.nulls != nil && c.nulls[r]:
						id = 0
					case c.ints[r] != 0:
						id = 2
					default:
						id = 1
					}
				case vecGroupNum:
					c := groupCols[i]
					if c.nulls == nil || !c.nulls[r] {
						code, ok := part.dicts[i].idFor(groupKeyBits(c, g.typ, r))
						if !ok {
							return nil, errGroupIDSpace
						}
						id = uint64(code)
					}
				case vecGroupFlag:
					truth := false
					if bf := boundFlags[i]; bf != nil {
						truth = flagSels[i][idx]
						if truth && len(bf.residual) > 0 {
							view.row = r
							for _, fn := range bf.residual {
								if !fn(view).Truthy() {
									truth = false
									break
								}
							}
						}
					} else {
						view.row = r
						truth = g.pred(view).Truthy()
					}
					if truth {
						id = 1
					}
				}
				gid += id * strides[i]
			}

			slot := index.get(gid)
			if slot < 0 {
				slot = int32(len(part.entries))
				part.entries = append(part.entries, &groupEntry{
					keys:   v.decodeKeys(t, gid, cards, strides, part.dicts),
					states: make([]aggState, len(p.aggs)),
				})
				part.gids = append(part.gids, gid)
				index.put(gid, slot)
			}

			states := part.entries[slot].states
			for ai := range p.aggs {
				a := &p.aggs[ai]
				s := &states[ai]
				c := aggCols[ai]
				switch a.kind {
				case aggCountStar:
					s.count++
				case aggCount:
					if c.nulls == nil || !c.nulls[r] {
						s.count++
					}
				case aggSum, aggAvg:
					if c.nulls != nil && c.nulls[r] {
						break
					}
					s.count++
					if a.argType == TypeFloat {
						s.sum += c.flts[r]
					} else {
						s.sum += float64(c.ints[r])
					}
				case aggMin:
					if c.nulls != nil && c.nulls[r] {
						break
					}
					// Typed comparisons; a Value is built only when the
					// running minimum actually improves. Int comparisons go
					// through float64 on purpose: the interpreter's
					// Value.Compare coerces every numeric kind with AsFloat,
					// so ints beyond 2^53 that collide as float64 must
					// keep-first here too or parallel results would diverge
					// from serial ones.
					switch a.argType {
					case TypeFloat:
						if x := c.flts[r]; !s.seen || x < s.min.F {
							s.min = Float(x)
							s.seen = true
						}
					case TypeInt:
						if x := c.ints[r]; !s.seen || float64(x) < float64(s.min.I) {
							s.min = Int(x)
							s.seen = true
						}
					default: // TypeBool
						if x := c.ints[r]; !s.seen || x < s.min.I {
							s.min = Bool(x != 0)
							s.seen = true
						}
					}
				case aggMax:
					if c.nulls != nil && c.nulls[r] {
						break
					}
					switch a.argType {
					case TypeFloat:
						if x := c.flts[r]; !s.seen || x > s.max.F {
							s.max = Float(x)
							s.seen = true
						}
					case TypeInt:
						if x := c.ints[r]; !s.seen || float64(x) > float64(s.max.I) {
							s.max = Int(x)
							s.seen = true
						}
					default: // TypeBool
						if x := c.ints[r]; !s.seen || x > s.max.I {
							s.max = Bool(x != 0)
							s.seen = true
						}
					}
				}
			}
		}
	}
	part.scanned = hi - lo
	return part, nil
}

// idSpaceOf multiplies cardinalities (already overflow-checked by run).
func idSpaceOf(cards []uint64) uint64 {
	s := uint64(1)
	for _, c := range cards {
		s *= c
	}
	return s
}

// decodeKeys reconstructs the group-key Values a serial scan would have
// produced for the row(s) behind a combined group id. dicts supplies the
// worker-local numeric dictionaries (nil entries for non-numeric
// groups).
func (v *vecInfo) decodeKeys(t *ColStore, gid uint64, cards, strides []uint64, dicts []*numDict) []Value {
	keys := make([]Value, len(v.groups))
	for i := range v.groups {
		g := &v.groups[i]
		id := (gid / strides[i]) % cards[i]
		switch g.kind {
		case vecGroupDict:
			if id == 0 {
				keys[i] = Null()
			} else {
				keys[i] = Str(t.cols[g.col].dict[id-1])
			}
		case vecGroupBool:
			switch id {
			case 0:
				keys[i] = Null()
			case 1:
				keys[i] = Bool(false)
			default:
				keys[i] = Bool(true)
			}
		case vecGroupNum:
			if id == 0 {
				keys[i] = Null()
			} else {
				bits := dicts[i].order[id-1]
				if g.typ == TypeFloat {
					keys[i] = Float(math.Float64frombits(bits))
				} else {
					keys[i] = Int(int64(bits))
				}
			}
		case vecGroupFlag:
			if id == 1 {
				keys[i] = Int(g.thenV)
			} else {
				keys[i] = Int(g.elseV)
			}
		}
	}
	return keys
}

// merge folds worker partials together in chunk order. Because chunks
// are contiguous and ordered, appending each chunk's unseen groups in
// its own first-seen order reproduces the first-seen order of a
// sequential scan. Numeric group-key codes are worker-local, so the
// merge remaps them onto a global dictionary before comparing ids;
// ok=false reports a (theoretical) global id-space overflow, which sends
// the query to the serial interpreter.
func (v *vecInfo) merge(p *plan, parts []*vecPartial, cards, strides []uint64, idSpace uint64) (entries []*groupEntry, scanned int, ok bool) {
	if len(parts) == 1 {
		return parts[0].entries, parts[0].scanned, true
	}
	if len(v.numGroups) == 0 {
		return v.mergeStatic(p, parts, idSpace), totalScanned(parts), true
	}

	// Pass 1: build global numeric dictionaries (walking partials in
	// chunk order keeps the assignment deterministic) and per-partial
	// code remap tables.
	globalIDs := make([]map[uint64]uint32, len(v.groups))
	for _, i := range v.numGroups {
		globalIDs[i] = make(map[uint64]uint32)
	}
	remaps := make([][][]uint32, len(parts)) // [part][group] local code+null → global
	for pi, part := range parts {
		remaps[pi] = make([][]uint32, len(v.groups))
		for _, i := range v.numGroups {
			local := part.dicts[i]
			rm := make([]uint32, len(local.order)+1)
			for j, bits := range local.order {
				gIDs := globalIDs[i]
				gid, seen := gIDs[bits]
				if !seen {
					gid = uint32(len(gIDs)) + 1
					gIDs[bits] = gid
				}
				rm[j+1] = gid
			}
			remaps[pi][i] = rm
		}
	}

	// Global mixed-radix layout with the exact merged cardinalities.
	gCards := append([]uint64(nil), cards...)
	for _, i := range v.numGroups {
		gCards[i] = uint64(len(globalIDs[i])) + 1
	}
	gStrides := make([]uint64, len(v.groups))
	gSpace := uint64(1)
	for i, card := range gCards {
		gStrides[i] = gSpace
		if gSpace > maxGroupIDSpace/card {
			return nil, 0, false
		}
		gSpace *= card
	}

	// Pass 2: the usual chunk-order merge, on remapped global ids.
	index := newGIDIndex(gSpace)
	var out []*groupEntry
	for pi, part := range parts {
		scanned += part.scanned
		for j, e := range part.entries {
			gid := part.gids[j]
			ggid := uint64(0)
			for i := range v.groups {
				id := (gid / strides[i]) % cards[i]
				if rm := remaps[pi][i]; rm != nil {
					id = uint64(rm[id])
				}
				ggid += id * gStrides[i]
			}
			slot := index.get(ggid)
			if slot < 0 {
				slot = int32(len(out))
				out = append(out, e)
				index.put(ggid, slot)
				continue
			}
			dst := out[slot].states
			for ai := range p.aggs {
				dst[ai].merge(&p.aggs[ai], &e.states[ai])
			}
		}
	}
	return out, scanned, true
}

// mergeStatic merges partials whose group ids are already globally
// comparable (no runtime dictionaries involved).
func (v *vecInfo) mergeStatic(p *plan, parts []*vecPartial, idSpace uint64) []*groupEntry {
	index := newGIDIndex(idSpace)
	var out []*groupEntry
	for _, part := range parts {
		for j, e := range part.entries {
			gid := part.gids[j]
			slot := index.get(gid)
			if slot < 0 {
				slot = int32(len(out))
				out = append(out, e)
				index.put(gid, slot)
				continue
			}
			dst := out[slot].states
			for ai := range p.aggs {
				dst[ai].merge(&p.aggs[ai], &e.states[ai])
			}
		}
	}
	return out
}

// totalScanned sums the partials' visited-row counts.
func totalScanned(parts []*vecPartial) int {
	n := 0
	for _, p := range parts {
		n += p.scanned
	}
	return n
}
