package sqldb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// vexecTable builds a ColStore with SeeDB-shaped data: string dims (with
// NULLs), a bool column, int and float measures (with NULLs). Float
// values are multiples of 0.25 so chunked summation stays exact.
func vexecTable(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	schema := MustSchema(
		Column{Name: "d1", Type: TypeString},
		Column{Name: "d2", Type: TypeString},
		Column{Name: "b1", Type: TypeBool},
		Column{Name: "k1", Type: TypeInt},
		Column{Name: "m1", Type: TypeFloat},
		Column{Name: "m2", Type: TypeInt},
	)
	tab, err := db.CreateTable("t", schema, LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		vals := []Value{
			Str(fmt.Sprintf("g%d", i%7)),
			Str(fmt.Sprintf("h%d", i%3)),
			Bool(i%2 == 0),
			Int(int64(i % 5)),
			Float(float64(i%1000) * 0.25),
			Int(int64(i%90 - 45)),
		}
		if i%11 == 0 {
			vals[0] = Null()
		}
		if i%13 == 0 {
			vals[4] = Null()
		}
		if i%17 == 0 {
			vals[2] = Null()
		}
		if err := tab.AppendRow(vals); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// mustEqualResults asserts byte-identical rows (appendKey encoding, so
// NaN and -0.0 are distinguished) and equal columns.
func mustEqualResults(t *testing.T, sql string, a, b *Result) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("%s: column count %d vs %d", sql, len(a.Columns), len(b.Columns))
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row count %d vs %d", sql, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("%s: row %d width %d vs %d", sql, i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			ka := string(a.Rows[i][j].appendKey(nil))
			kb := string(b.Rows[i][j].appendKey(nil))
			if ka != kb {
				t.Fatalf("%s: row %d col %d: %v vs %v", sql, i, j,
					a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestVectorizedMatchesSerial(t *testing.T) {
	db := vexecTable(t, 5000)
	queries := []string{
		"SELECT d1, COUNT(*), SUM(m1), AVG(m1), MIN(m2), MAX(m2) FROM t GROUP BY d1",
		"SELECT d1, d2, AVG(m1) FROM t GROUP BY d1, d2",
		"SELECT d1, CASE WHEN d2 = 'h1' THEN 1 ELSE 0 END AS flag, SUM(m1), COUNT(m1) FROM t GROUP BY d1, CASE WHEN d2 = 'h1' THEN 1 ELSE 0 END",
		"SELECT b1, COUNT(m1), MIN(m1), MAX(m1) FROM t GROUP BY b1",
		"SELECT d1, COUNT(*) FROM t WHERE m2 > 0 AND d2 != 'h2' GROUP BY d1",
		"SELECT d1, SUM(m2) FROM t GROUP BY d1 HAVING COUNT(*) > 100 ORDER BY SUM(m2) DESC",
		"SELECT COUNT(*), SUM(m1) FROM t",                      // global aggregation
		"SELECT COUNT(*) FROM t WHERE m1 < -1",                 // empty global group
		"SELECT d1, COUNT(*) FROM t WHERE m1 < -1 GROUP BY d1", // zero groups
		"SELECT d1, AVG(m1) FROM t GROUP BY d1 ORDER BY 2 DESC LIMIT 3",
		// Numeric group keys (runtime value dictionaries), incl. NULLs.
		"SELECT k1, COUNT(*), SUM(m1) FROM t GROUP BY k1",
		"SELECT m1, COUNT(*) FROM t GROUP BY m1",
		"SELECT k1, d1, AVG(m1), MIN(m2) FROM t WHERE b1 = TRUE GROUP BY k1, d1",
		"SELECT m2, k1, COUNT(m1) FROM t GROUP BY m2, k1",
		// Compilable predicate shapes (selection kernels) over every
		// column type, incl. NULL-comparison and disjunction edges.
		"SELECT d1, COUNT(*) FROM t WHERE d2 >= 'h1' AND k1 IN (1, 3) GROUP BY d1",
		"SELECT d1, SUM(m1) FROM t WHERE m1 BETWEEN 10.25 AND 200 OR m2 IS NULL GROUP BY d1",
		"SELECT d2, COUNT(*) FROM t WHERE NOT (d1 = 'g2' OR m2 <= 0) GROUP BY d2",
		"SELECT d1, COUNT(*) FROM t WHERE m1 = NULL GROUP BY d1",
		"SELECT d1, COUNT(*) FROM t WHERE b1 AND d2 NOT IN ('h0') GROUP BY d1",
		// Hybrid residual: one compilable conjunct + one closure conjunct.
		"SELECT d1, COUNT(*) FROM t WHERE m2 > 0 AND m2 % 3 = 0 GROUP BY d1",
	}
	for _, sql := range queries {
		for _, workers := range []int{2, 3, 7} {
			serial, err := db.QueryOpts(sql, ExecOptions{Workers: 1})
			if err != nil {
				t.Fatalf("%s: serial: %v", sql, err)
			}
			if serial.Stats.Vectorized {
				t.Fatalf("%s: Workers=1 must use the interpreter", sql)
			}
			par, err := db.QueryOpts(sql, ExecOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", sql, workers, err)
			}
			if !par.Stats.Vectorized {
				t.Fatalf("%s: workers=%d: expected vectorized execution", sql, workers)
			}
			if par.Stats.Workers < 1 || par.Stats.Workers > workers {
				t.Fatalf("%s: reported %d workers, asked for %d", sql, par.Stats.Workers, workers)
			}
			mustEqualResults(t, sql, serial, par)
			if serial.Stats.RowsScanned != par.Stats.RowsScanned {
				t.Fatalf("%s: rows scanned %d vs %d", sql, serial.Stats.RowsScanned, par.Stats.RowsScanned)
			}
			if serial.Stats.Groups != par.Stats.Groups {
				t.Fatalf("%s: groups %d vs %d", sql, serial.Stats.Groups, par.Stats.Groups)
			}
		}
	}
}

// TestVectorizedWorkerCap asserts an absurd Workers value (e.g. one
// forwarded from an untrusted request knob) is capped near GOMAXPROCS
// instead of spawning a goroutine per row.
func TestVectorizedWorkerCap(t *testing.T) {
	db := vexecTable(t, 4000)
	res, err := db.QueryOpts("SELECT d1, SUM(m1) FROM t GROUP BY d1",
		ExecOptions{Workers: 1_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Vectorized {
		t.Fatal("expected vectorized execution")
	}
	if max := maxWorkersPerQuery(); res.Stats.Workers > max {
		t.Fatalf("used %d workers, cap is %d", res.Stats.Workers, max)
	}
}

func TestVectorizedSubRanges(t *testing.T) {
	db := vexecTable(t, 3000)
	sql := "SELECT d1, d2, SUM(m1), COUNT(*) FROM t GROUP BY d1, d2"
	ranges := [][2]int{{0, 1}, {0, 100}, {17, 18}, {500, 2999}, {2999, 3000}, {1000, 1000}, {2000, 0}, {-5, 50}}
	for _, r := range ranges {
		serial, err := db.QueryOpts(sql, ExecOptions{Lo: r[0], Hi: r[1], Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := db.QueryOpts(sql, ExecOptions{Lo: r[0], Hi: r[1], Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("%s [%d,%d)", sql, r[0], r[1]), serial, par)
	}
}

// TestVectorizedFallbacks asserts the interpreter handles shapes the fast
// path declines, with identical results either way.
func TestVectorizedFallbacks(t *testing.T) {
	db := vexecTable(t, 2000)
	fallbacks := []struct {
		sql    string
		reason string
	}{
		{"SELECT d1, COUNT(DISTINCT d2) FROM t GROUP BY d1", fallbackDistinctAgg},
		{"SELECT d1, MIN(d2) FROM t GROUP BY d1", fallbackNonNumericAgg},
		{"SELECT d1, SUM(m1 + m2) FROM t GROUP BY d1", fallbackExprAgg},
		{"SELECT UPPER(d1), COUNT(*) FROM t GROUP BY UPPER(d1)", fallbackNonColumnKey},
		{"SELECT CASE WHEN b1 THEN 'y' ELSE 'n' END, COUNT(*) FROM t GROUP BY CASE WHEN b1 THEN 'y' ELSE 'n' END", fallbackCaseShape}, // non-int CASE arms
	}
	for _, tc := range fallbacks {
		sql := tc.sql
		par, err := db.QueryOpts(sql, ExecOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if par.Stats.Vectorized {
			t.Fatalf("%s: expected interpreter fallback", sql)
		}
		if par.Stats.Workers != 1 {
			t.Fatalf("%s: fallback should report 1 worker, got %d", sql, par.Stats.Workers)
		}
		if par.Stats.FallbackReason != tc.reason {
			t.Fatalf("%s: fallback reason %q, want %q", sql, par.Stats.FallbackReason, tc.reason)
		}
		serial, err := db.QueryOpts(sql, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Stats.FallbackReason != fallbackSerialExec {
			t.Fatalf("%s: serial reason %q, want %q", sql, serial.Stats.FallbackReason, fallbackSerialExec)
		}
		mustEqualResults(t, sql, serial, par)
	}

	// Row stores always use the interpreter.
	rdb := NewDB()
	tab, err := rdb.CreateTable("t", MustSchema(
		Column{Name: "d", Type: TypeString}, Column{Name: "m", Type: TypeFloat},
	), LayoutRow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tab.AppendRow([]Value{Str(fmt.Sprintf("g%d", i%4)), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := rdb.QueryOpts("SELECT d, SUM(m) FROM t GROUP BY d", ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Vectorized {
		t.Fatal("row store must not vectorize")
	}
	if res.Stats.FallbackReason != fallbackRowStore {
		t.Fatalf("row store reason %q, want %q", res.Stats.FallbackReason, fallbackRowStore)
	}
}

// TestSelectionKernelStats asserts the executor reports how the
// predicate ran: compilable conjuncts as kernels, exotic conjuncts as
// residuals, and nothing at all when kernels are disabled — with
// identical results on every path.
func TestSelectionKernelStats(t *testing.T) {
	db := vexecTable(t, 4000)
	sql := "SELECT d1, COUNT(*), SUM(m1) FROM t WHERE m2 > 0 AND d2 != 'h2' AND m2 % 3 = 0 GROUP BY d1"

	kern, err := db.QueryOpts(sql, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !kern.Stats.Vectorized || kern.Stats.FallbackReason != "" {
		t.Fatalf("expected vectorized run, stats: %+v", kern.Stats)
	}
	if kern.Stats.SelectionKernels != 2 || kern.Stats.ResidualPredicates != 1 {
		t.Fatalf("kernels=%d residuals=%d, want 2 kernels + 1 residual (m2 %% 3 = 0)",
			kern.Stats.SelectionKernels, kern.Stats.ResidualPredicates)
	}

	off, err := db.QueryOpts(sql, ExecOptions{Workers: 4, NoSelectionKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	if !off.Stats.Vectorized {
		t.Fatal("NoSelectionKernels must not disable the vectorized path itself")
	}
	if off.Stats.SelectionKernels != 0 || off.Stats.ResidualPredicates != 0 {
		t.Fatalf("kernel counters must be zero with kernels disabled: %+v", off.Stats)
	}
	serial, err := db.QueryOpts(sql, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.SelectionKernels != 0 {
		t.Fatalf("serial interpreter must not report kernels: %+v", serial.Stats)
	}
	mustEqualResults(t, sql, serial, kern)
	mustEqualResults(t, sql, serial, off)

	// The CASE-flag predicate of the combined target/reference rewrite
	// also compiles to kernels.
	flagSQL := "SELECT d1, CASE WHEN m1 > 50 AND b1 = TRUE THEN 1 ELSE 0 END, COUNT(*) FROM t" +
		" GROUP BY d1, CASE WHEN m1 > 50 AND b1 = TRUE THEN 1 ELSE 0 END"
	flag, err := db.QueryOpts(flagSQL, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !flag.Stats.Vectorized || flag.Stats.SelectionKernels != 2 {
		t.Fatalf("flag predicate should compile to 2 kernels: %+v", flag.Stats)
	}
	flagSerial, err := db.QueryOpts(flagSQL, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, flagSQL, flagSerial, flag)
}

// TestTypedMinMaxMatchesInterpreterBeyond2p53 pins the typed MIN/MAX
// accumulators to the interpreter's float64-coerced comparison:
// Value.Compare coerces ints with AsFloat, so 2^53 and 2^53+1 compare
// equal (keep-first) — an exact int64 comparison in the fast path would
// return a different winner than the serial scan.
func TestTypedMinMaxMatchesInterpreterBeyond2p53(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("t", MustSchema(
		Column{Name: "d", Type: TypeString},
		Column{Name: "m", Type: TypeInt},
	), LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	big := int64(1) << 53
	for i := 0; i < 400; i++ {
		v := big
		if i%2 == 1 {
			v = big + 1 // same float64 as big: Compare sees them equal
		}
		if err := tab.AppendRow([]Value{Str(fmt.Sprintf("g%d", i%3)), Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	sql := "SELECT d, MIN(m), MAX(m) FROM t GROUP BY d"
	serial, err := db.QueryOpts(sql, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := db.QueryOpts(sql, ExecOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !par.Stats.Vectorized {
			t.Fatalf("workers=%d: expected vectorized run (reason %q)", workers, par.Stats.FallbackReason)
		}
		mustEqualResults(t, sql, serial, par)
	}
}

// TestNumericGroupKeyEdges pins the runtime-dictionary group keys to the
// interpreter's identity semantics: -0.0 and +0.0 are distinct groups
// (the serial path keys on float bits), NULL is its own group, and
// worker-local codes remap correctly across chunk boundaries.
func TestNumericGroupKeyEdges(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("t", MustSchema(
		Column{Name: "f", Type: TypeFloat},
		Column{Name: "m", Type: TypeInt},
	), LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	vals := []Value{Float(0.0), Float(math.Copysign(0, -1)), Float(1.5), Null(), Float(-1.5)}
	for i := 0; i < 500; i++ {
		if err := tab.AppendRow([]Value{vals[i%len(vals)], Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sql := "SELECT f, COUNT(*), SUM(m) FROM t GROUP BY f"
	serial, err := db.QueryOpts(sql, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != 5 {
		t.Fatalf("serial found %d groups, want 5 (NULL, ±0.0, ±1.5)", len(serial.Rows))
	}
	for _, workers := range []int{2, 3, 7} {
		par, err := db.QueryOpts(sql, ExecOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !par.Stats.Vectorized {
			t.Fatalf("workers=%d: float group key should vectorize, reason %q",
				workers, par.Stats.FallbackReason)
		}
		mustEqualResults(t, sql, serial, par)
	}
}

// TestVectorizedCancellation asserts the checkEvery context checks are
// preserved inside the per-worker loops: a cancelled context aborts the
// scan promptly instead of completing it.
func TestVectorizedCancellation(t *testing.T) {
	db := vexecTable(t, 100_000) // > checkEvery rows per worker chunk
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the scan starts: first checkEvery boundary must abort

	for _, workers := range []int{1, 4} {
		start := time.Now()
		_, err := db.QueryOpts("SELECT d1, SUM(m1) FROM t GROUP BY d1",
			ExecOptions{Ctx: ctx, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancellation took %v, want prompt return", workers, elapsed)
		}
	}

	// Mid-scan cancellation: cancel shortly after kickoff; the query must
	// return an error (or, on a fast machine, complete) without hanging.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.QueryOpts("SELECT d1, d2, b1, AVG(m1), SUM(m2) FROM t GROUP BY d1, d2, b1",
			ExecOptions{Ctx: ctx2, Workers: 4})
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel2()
	select {
	case <-done:
		// Completed or cancelled — either way it returned promptly.
	case <-time.After(10 * time.Second):
		t.Fatal("query did not return after cancellation")
	}
}
