// Package sqldriver exposes the embedded sqldb store through Go's
// standard database/sql interface. Any database/sql consumer — notably
// the sqlbe external-store backend and its conformance tests — can then
// run against the in-process engine exactly as it would against a
// network DBMS, without cgo or external dependencies.
//
// Open a handle with sqldriver.Open(db); there is no global driver
// registration and no DSN. The driver is read-only (queries only),
// supports no placeholder arguments and no transactions: that is the
// entire surface SeeDB's generated aggregation queries need.
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"

	"seedb/internal/sqldb"
)

// Open returns a database/sql handle whose queries execute against the
// embedded db. The handle is safe for concurrent use (the underlying
// store is).
func Open(db *sqldb.DB) *sql.DB {
	return sql.OpenDB(connector{db: db})
}

// connector hands out connections bound to one embedded DB.
type connector struct {
	db *sqldb.DB
}

// Connect returns a new (stateless) connection.
func (c connector) Connect(context.Context) (driver.Conn, error) {
	return &conn{db: c.db}, nil
}

// Driver returns the parent driver.
func (c connector) Driver() driver.Driver { return drv{} }

// drv exists to satisfy driver.Connector; connections are only created
// through Open.
type drv struct{}

// Open is unsupported: handles come from sqldriver.Open, not DSNs.
func (drv) Open(string) (driver.Conn, error) {
	return nil, fmt.Errorf("sqldriver: open via sqldriver.Open(*sqldb.DB), not a DSN")
}

// conn is one stateless connection to the embedded store.
type conn struct {
	db *sqldb.DB
}

// Prepare compiles the query against the current catalog.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	pq, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{pq: pq}, nil
}

// Close releases the (stateless) connection.
func (c *conn) Close() error { return nil }

// Begin is unsupported: the store is bulk-load-then-query.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqldriver: transactions are not supported")
}

// QueryContext executes query directly, bypassing Prepare (the fast path
// database/sql uses when the driver supports it).
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholder arguments are not supported")
	}
	res, err := c.db.QueryContext(ctx, query)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// stmt is a prepared query.
type stmt struct {
	pq *sqldb.PreparedQuery
}

// Close releases the statement.
func (s *stmt) Close() error { return nil }

// NumInput: the driver supports no placeholders.
func (s *stmt) NumInput() int { return 0 }

// Exec is unsupported: the driver is read-only.
func (s *stmt) Exec([]driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("sqldriver: Exec is not supported (read-only driver)")
}

// Query executes the prepared statement.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholder arguments are not supported")
	}
	res, err := s.pq.Exec(sqldb.ExecOptions{})
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// rows iterates a materialized result.
type rows struct {
	res *sqldb.Result
	i   int
}

// Columns returns the result column names.
func (r *rows) Columns() []string { return r.res.Columns }

// Close releases the cursor.
func (r *rows) Close() error { return nil }

// Next copies the next row into dest as driver values (int64, float64,
// bool, string or nil).
func (r *rows) Next(dest []driver.Value) error {
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for i, v := range row {
		switch v.Kind {
		case sqldb.KindNull:
			dest[i] = nil
		case sqldb.KindInt:
			dest[i] = v.I
		case sqldb.KindFloat:
			dest[i] = v.F
		case sqldb.KindBool:
			dest[i] = v.I != 0
		case sqldb.KindString:
			dest[i] = v.S
		default:
			return fmt.Errorf("sqldriver: unsupported value kind %v", v.Kind)
		}
	}
	return nil
}
