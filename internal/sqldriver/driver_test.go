package sqldriver

import (
	"context"
	"testing"

	"seedb/internal/sqldb"
)

func buildDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "region", Type: sqldb.TypeString},
		sqldb.Column{Name: "ok", Type: sqldb.TypeBool},
		sqldb.Column{Name: "qty", Type: sqldb.TypeInt},
		sqldb.Column{Name: "price", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("sales", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]sqldb.Value{
		{sqldb.Str("east"), sqldb.Bool(true), sqldb.Int(1), sqldb.Float(1.5)},
		{sqldb.Str("west"), sqldb.Bool(false), sqldb.Int(2), sqldb.Null()},
		{sqldb.Str("east"), sqldb.Bool(true), sqldb.Int(3), sqldb.Float(3.5)},
	}
	for _, r := range rows {
		if err := tab.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestQueryRoundTrip(t *testing.T) {
	sdb := Open(buildDB(t))
	defer sdb.Close()

	rows, err := sdb.QueryContext(context.Background(),
		"SELECT region, ok, qty, price FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil || len(cols) != 4 {
		t.Fatalf("columns = %v, %v", cols, err)
	}
	n := 0
	for rows.Next() {
		var region, ok, qty, price any
		if err := rows.Scan(&region, &ok, &qty, &price); err != nil {
			t.Fatal(err)
		}
		if _, isStr := region.(string); !isStr {
			t.Errorf("region scanned as %T", region)
		}
		if _, isBool := ok.(bool); !isBool {
			t.Errorf("ok scanned as %T", ok)
		}
		if _, isInt := qty.(int64); !isInt {
			t.Errorf("qty scanned as %T", qty)
		}
		if n == 1 && price != nil {
			t.Errorf("NULL price scanned as %#v", price)
		}
		if n != 1 {
			if _, isF := price.(float64); !isF {
				t.Errorf("price scanned as %T", price)
			}
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("rows = %d, want 3", n)
	}
}

func TestAggregationThroughDriver(t *testing.T) {
	sdb := Open(buildDB(t))
	defer sdb.Close()

	var region string
	var sum float64
	err := sdb.QueryRow(
		"SELECT region, SUM(qty) FROM sales WHERE region = 'east' GROUP BY region").
		Scan(&region, &sum)
	if err != nil {
		t.Fatal(err)
	}
	if region != "east" || sum != 4 {
		t.Errorf("got %q %v", region, sum)
	}
}

func TestUnsupportedFeatures(t *testing.T) {
	sdb := Open(buildDB(t))
	defer sdb.Close()

	if _, err := sdb.Query("SELECT region FROM sales WHERE qty = ?", 1); err == nil {
		t.Error("placeholders should be rejected")
	}
	if _, err := sdb.Exec("SELECT region FROM sales"); err == nil {
		t.Error("Exec should be rejected (read-only driver)")
	}
	if _, err := sdb.Query("SELECT broken syntax here FROM"); err == nil {
		t.Error("parse errors should surface")
	}
}
