// Package stats provides the statistical machinery behind SeeDB's
// confidence-interval pruning: the Hoeffding–Serfling inequality for
// sampling without replacement (Theorem 4.1 in the paper), plus running
// mean/interval trackers used by the phased execution framework.
package stats

import (
	"math"
)

// HoeffdingSerfling returns the half-width ε of the running confidence
// interval after drawing m of N values in [0, 1] without replacement,
// such that the true mean lies within [mean−ε, mean+ε] with probability
// at least 1−δ simultaneously for all prefixes 1..m (Theorem 4.1):
//
//	ε_m = sqrt( (1 − (m−1)/N) · (2·log log m + log(π²/(3δ))) / (2m) )
//
// The log log m term is clamped at 0 for m < 3 (log log is undefined or
// negative there; the clamp only widens the interval, preserving the
// guarantee).
func HoeffdingSerfling(m, N int, delta float64) float64 {
	if m <= 0 || N <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	if m >= N {
		return 0 // the whole population has been seen
	}
	loglog := 0.0
	if m >= 3 {
		loglog = math.Log(math.Log(float64(m)))
		if loglog < 0 {
			loglog = 0
		}
	}
	shrink := 1 - float64(m-1)/float64(N)
	num := shrink * (2*loglog + math.Log(math.Pi*math.Pi/(3*delta)))
	return math.Sqrt(num / (2 * float64(m)))
}

// RunningMean tracks a streaming mean together with its
// Hoeffding–Serfling interval over a population of known size.
type RunningMean struct {
	n     int // population size N
	m     int // samples drawn
	sum   float64
	delta float64
}

// NewRunningMean creates a tracker for a population of n values in [0,1],
// with failure probability delta.
func NewRunningMean(n int, delta float64) *RunningMean {
	return &RunningMean{n: n, delta: delta}
}

// Observe folds one sampled value into the mean.
func (r *RunningMean) Observe(x float64) {
	r.m++
	r.sum += x
}

// ObserveBatch folds a batch mean covering k samples (the phased engine
// observes one utility estimate per phase that summarizes k rows).
func (r *RunningMean) ObserveBatch(x float64, k int) {
	if k <= 0 {
		return
	}
	r.m += k
	r.sum += x * float64(k)
}

// Count returns the number of samples observed.
func (r *RunningMean) Count() int { return r.m }

// Mean returns the running mean (0 before any observation).
func (r *RunningMean) Mean() float64 {
	if r.m == 0 {
		return 0
	}
	return r.sum / float64(r.m)
}

// Epsilon returns the current confidence half-width.
func (r *RunningMean) Epsilon() float64 {
	if r.m == 0 {
		return math.Inf(1)
	}
	return HoeffdingSerfling(r.m, r.n, r.delta)
}

// Bounds returns the confidence interval [lower, upper], clamped to
// [0, 1] (utilities are normalized into the unit interval before
// pruning).
func (r *RunningMean) Bounds() (lower, upper float64) {
	mean, eps := r.Mean(), r.Epsilon()
	lower, upper = mean-eps, mean+eps
	if lower < 0 {
		lower = 0
	}
	if upper > 1 {
		upper = 1
	}
	if math.IsInf(eps, 1) {
		lower, upper = 0, 1
	}
	return lower, upper
}

// Welford tracks mean and variance of a stream (used for reporting
// run-to-run variation in the benchmark harness).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }
