package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHoeffdingSerflingShrinksWithSamples(t *testing.T) {
	// ε must (weakly) shrink as m grows toward N, pointwise over a grid.
	const N = 10000
	prev := math.Inf(1)
	for _, m := range []int{1, 10, 100, 1000, 5000, 9000, 9999} {
		eps := HoeffdingSerfling(m, N, 0.05)
		if eps > prev+1e-9 {
			t.Errorf("ε(m=%d) = %g > ε(previous) = %g", m, eps, prev)
		}
		prev = eps
	}
}

func TestHoeffdingSerflingFullPopulationIsExact(t *testing.T) {
	if eps := HoeffdingSerfling(100, 100, 0.05); eps != 0 {
		t.Errorf("ε(m=N) = %g, want 0", eps)
	}
	if eps := HoeffdingSerfling(150, 100, 0.05); eps != 0 {
		t.Errorf("ε(m>N) = %g, want 0", eps)
	}
}

func TestHoeffdingSerflingDegenerateInputs(t *testing.T) {
	for _, c := range []struct {
		m, n int
		d    float64
	}{
		{0, 100, 0.05}, {-1, 100, 0.05}, {10, 0, 0.05},
		{10, 100, 0}, {10, 100, 1}, {10, 100, -0.5},
	} {
		if eps := HoeffdingSerfling(c.m, c.n, c.d); !math.IsInf(eps, 1) {
			t.Errorf("ε(%d,%d,%g) = %g, want +Inf", c.m, c.n, c.d, eps)
		}
	}
}

func TestHoeffdingSerflingTighterDeltaWiderInterval(t *testing.T) {
	// Smaller δ (more confidence) must widen the interval.
	loose := HoeffdingSerfling(500, 10000, 0.1)
	tight := HoeffdingSerfling(500, 10000, 0.001)
	if tight <= loose {
		t.Errorf("δ=0.001 ε (%g) should exceed δ=0.1 ε (%g)", tight, loose)
	}
}

func TestHoeffdingSerflingCoverageEmpirical(t *testing.T) {
	// Empirical check of the guarantee: sample without replacement from
	// a fixed [0,1] population; the true mean should fall inside the
	// interval in well over 1−δ of trials.
	rng := rand.New(rand.NewSource(9))
	const N = 2000
	pop := make([]float64, N)
	var sum float64
	for i := range pop {
		pop[i] = rng.Float64()
		sum += pop[i]
	}
	trueMean := sum / N

	const trials = 200
	const delta = 0.05
	covered := 0
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(N)
		rm := NewRunningMean(N, delta)
		m := 100 + rng.Intn(500)
		for i := 0; i < m; i++ {
			rm.Observe(pop[perm[i]])
		}
		lo, hi := rm.Bounds()
		if trueMean >= lo && trueMean <= hi {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 1-delta {
		t.Errorf("coverage %.3f below 1-δ = %.3f", frac, 1-delta)
	}
}

func TestRunningMeanBasics(t *testing.T) {
	rm := NewRunningMean(100, 0.05)
	if rm.Mean() != 0 || !math.IsInf(rm.Epsilon(), 1) {
		t.Error("empty tracker should have zero mean and infinite ε")
	}
	lo, hi := rm.Bounds()
	if lo != 0 || hi != 1 {
		t.Errorf("empty bounds = [%g, %g], want [0, 1]", lo, hi)
	}
	rm.Observe(0.2)
	rm.Observe(0.4)
	if math.Abs(rm.Mean()-0.3) > 1e-12 || rm.Count() != 2 {
		t.Errorf("mean = %g count = %d", rm.Mean(), rm.Count())
	}
}

func TestRunningMeanBatch(t *testing.T) {
	a := NewRunningMean(1000, 0.05)
	for i := 0; i < 10; i++ {
		a.Observe(0.5)
	}
	b := NewRunningMean(1000, 0.05)
	b.ObserveBatch(0.5, 10)
	if a.Mean() != b.Mean() || a.Count() != b.Count() {
		t.Errorf("batch differs: %g/%d vs %g/%d", a.Mean(), a.Count(), b.Mean(), b.Count())
	}
	b.ObserveBatch(0.7, 0) // no-op
	if b.Count() != 10 {
		t.Error("zero-size batch must be ignored")
	}
}

func TestRunningMeanBoundsClamped(t *testing.T) {
	rm := NewRunningMean(1000, 0.05)
	rm.Observe(0.01)
	lo, hi := rm.Bounds()
	if lo < 0 || hi > 1 {
		t.Errorf("bounds [%g, %g] escaped [0,1]", lo, hi)
	}
}

func TestEpsilonMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(10000)
		m1 := 1 + rng.Intn(n-1)
		m2 := m1 + rng.Intn(n-m1)
		return HoeffdingSerfling(m2, n, 0.05) <= HoeffdingSerfling(m1, n, 0.05)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Stddev() != 0 {
		t.Error("empty Welford should report zero variance")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != len(data) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	// Sample variance of the data set is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("var = %g, want %g", w.Var(), 32.0/7.0)
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(w.Var()-naiveVar)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
