// Package study implements the user-study harness of Section 6 of the
// SeeDB paper, substituting simulated participants for the original human
// subjects (see DESIGN.md §3):
//
//   - An expert panel produces ground-truth interestingness labels for
//     candidate views (§6.1's 5 data-analysis experts). Each simulated
//     expert labels a view interesting with probability driven by the
//     dataset's *planted* interestingness plus personal noise and
//     idiosyncratic preferences; the majority vote is the ground truth.
//   - ROC/AUROC analysis of the deviation-based ranking against the
//     ground truth (Figure 15).
//   - A behavioural analyst model comparing SEEDB against a MANUAL
//     chart-construction tool (Table 2): within a fixed session time
//     budget, analysts examine views — in recommendation order with
//     SEEDB, in arbitrary construction order with MANUAL — and bookmark
//     the ones they find interesting.
package study

import (
	"math"
	"math/rand"
	"sort"
)

// PanelConfig configures the simulated expert panel.
type PanelConfig struct {
	// Experts is the panel size (default 5, as in the paper).
	Experts int
	// Threshold is the interestingness level at which an expert is 50%
	// likely to label a view interesting (default 0.12).
	Threshold float64
	// Sharpness controls how crisp the labelling transition is; higher
	// is crisper (default 25).
	Sharpness float64
	// Idiosyncrasy is the standard deviation of per-expert, per-view
	// preference noise — the paper's experts disagreed on views like
	// Figure 14d ("hours-per-week seems worth exploring") (default
	// 0.05).
	Idiosyncrasy float64
	// Seed makes the panel deterministic (default 1).
	Seed int64
}

func (c PanelConfig) withDefaults() PanelConfig {
	if c.Experts <= 0 {
		c.Experts = 5
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.12
	}
	if c.Sharpness <= 0 {
		c.Sharpness = 25
	}
	if c.Idiosyncrasy < 0 {
		c.Idiosyncrasy = 0
	} else if c.Idiosyncrasy == 0 {
		c.Idiosyncrasy = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Labels holds the panel's output.
type Labels struct {
	// Votes counts, per view key, how many experts labelled it
	// interesting.
	Votes map[string]int
	// Interesting is the majority-vote ground truth.
	Interesting map[string]bool
	// Experts is the panel size used.
	Experts int
}

// SimulateLabels runs the expert panel over the candidate views.
// interest maps each view key to its true (planted) interestingness.
func SimulateLabels(cfg PanelConfig, interest map[string]float64) *Labels {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	keys := make([]string, 0, len(interest))
	for k := range interest {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic iteration

	votes := make(map[string]int, len(keys))
	for e := 0; e < cfg.Experts; e++ {
		// Each expert has a personal threshold offset.
		personal := cfg.Threshold + rng.NormFloat64()*0.02
		for _, k := range keys {
			x := interest[k] + rng.NormFloat64()*cfg.Idiosyncrasy
			p := logistic(cfg.Sharpness * (x - personal))
			if rng.Float64() < p {
				votes[k]++
			}
		}
	}
	majority := cfg.Experts/2 + 1
	labels := &Labels{Votes: votes, Interesting: make(map[string]bool), Experts: cfg.Experts}
	for _, k := range keys {
		if votes[k] >= majority {
			labels.Interesting[k] = true
		}
	}
	return labels
}

// logistic is the standard sigmoid.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ROCPoint is one point of the receiver operating curve: recommend the
// top K views, measure the true/false positive rates against the ground
// truth (Figure 15b).
type ROCPoint struct {
	K   int
	TPR float64
	FPR float64
}

// ROC sweeps k over the deviation-ranked views (highest utility first)
// and returns the curve. The k=0 point (0,0) is included.
func ROC(ranked []string, interesting map[string]bool) []ROCPoint {
	totalPos := 0
	for _, k := range ranked {
		if interesting[k] {
			totalPos++
		}
	}
	totalNeg := len(ranked) - totalPos
	points := []ROCPoint{{K: 0}}
	tp, fp := 0, 0
	for i, k := range ranked {
		if interesting[k] {
			tp++
		} else {
			fp++
		}
		pt := ROCPoint{K: i + 1}
		if totalPos > 0 {
			pt.TPR = float64(tp) / float64(totalPos)
		}
		if totalNeg > 0 {
			pt.FPR = float64(fp) / float64(totalNeg)
		}
		points = append(points, pt)
	}
	return points
}

// AUROC integrates the ROC curve with the trapezoid rule.
func AUROC(points []ROCPoint) float64 {
	if len(points) < 2 {
		return 0
	}
	area := 0.0
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// Heatmap returns, for the deviation-ranked views, the expert vote count
// per rank position (Figure 15a: popular views should concentrate at the
// top of the utility ordering).
func Heatmap(ranked []string, labels *Labels) []int {
	out := make([]int, len(ranked))
	for i, k := range ranked {
		out[i] = labels.Votes[k]
	}
	return out
}

// StudyConfig configures the SEEDB-vs-MANUAL analyst simulation.
type StudyConfig struct {
	// Analysts is the number of simulated participants (default 16, as
	// in the paper).
	Analysts int
	// SessionTime is the per-task time budget in abstract minutes
	// (default 8, the paper's cap).
	SessionTime float64
	// ManualCost is the mean time to construct one chart manually
	// (default 1.25).
	ManualCost float64
	// RecommendedCost is the mean time to examine one recommended chart
	// (default 0.7 — recommendations skip the specification step).
	RecommendedCost float64
	// BookmarkBoost converts a view's true interestingness into the
	// probability an analyst bookmarks it after examining it (p =
	// interestingness × boost, clamped to [0,1]; default 2.2). Even
	// clearly interesting views are not bookmarked by everyone — the
	// paper's participants disagreed on plenty.
	BookmarkBoost float64
	// Seed makes the simulation deterministic (default 1).
	Seed int64
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Analysts <= 0 {
		c.Analysts = 16
	}
	if c.SessionTime <= 0 {
		c.SessionTime = 8
	}
	if c.ManualCost <= 0 {
		c.ManualCost = 1.25
	}
	if c.RecommendedCost <= 0 {
		c.RecommendedCost = 0.7
	}
	if c.BookmarkBoost <= 0 {
		c.BookmarkBoost = 2.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ToolStats aggregates one tool condition over all analysts (one row of
// Table 2): views built, bookmarks, bookmark rate — mean ± stddev.
type ToolStats struct {
	Tool            string
	TotalViz        float64
	TotalVizSD      float64
	Bookmarks       float64
	BookmarksSD     float64
	BookmarkRate    float64
	BookmarkRateSD  float64
	SessionsCounted int
}

// SimulateStudy runs the within-subjects comparison on one dataset:
// ranked lists the views in SeeDB's recommendation order (deviation
// descending) and interest maps view keys to true interestingness.
// Every analyst performs one SEEDB session (examining views in
// recommendation order) and one MANUAL session (examining views in a
// random construction order). The mechanism the paper credits for the 3X
// bookmark-rate gap — recommendation ordering front-loads high-utility
// views within a fixed time budget — is exactly what is modelled here.
func SimulateStudy(cfg StudyConfig, ranked []string, interest map[string]float64) (seedb, manual ToolStats) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var sViz, sBook, sRate []float64
	var mViz, mBook, mRate []float64

	for a := 0; a < cfg.Analysts; a++ {
		// Per-analyst diligence scales examination speed and bookmark
		// appetite.
		diligence := 0.8 + rng.Float64()*0.4
		boost := cfg.BookmarkBoost * (0.85 + rng.Float64()*0.3)

		// SEEDB session: examine in recommendation order.
		viz, book := runSession(rng, ranked, interest, cfg.SessionTime,
			cfg.RecommendedCost/diligence, boost)
		sViz = append(sViz, float64(viz))
		sBook = append(sBook, float64(book))
		if viz > 0 {
			sRate = append(sRate, float64(book)/float64(viz))
		}

		// MANUAL session: examine in a random construction order.
		shuffled := append([]string(nil), ranked...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		viz, book = runSession(rng, shuffled, interest, cfg.SessionTime,
			cfg.ManualCost/diligence, boost)
		mViz = append(mViz, float64(viz))
		mBook = append(mBook, float64(book))
		if viz > 0 {
			mRate = append(mRate, float64(book)/float64(viz))
		}
	}

	seedb = summarize("SEEDB", sViz, sBook, sRate)
	manual = summarize("MANUAL", mViz, mBook, mRate)
	return seedb, manual
}

// runSession walks the view order until the time budget is exhausted.
// Each examined view is bookmarked with probability proportional to its
// true interestingness; bookmarked views take a little longer (analysts
// dwell on them).
func runSession(rng *rand.Rand, order []string, interest map[string]float64,
	budget, meanCost, boost float64) (viz, bookmarks int) {
	elapsed := 0.0
	for _, key := range order {
		cost := meanCost * (0.7 + rng.Float64()*0.6)
		p := interest[key] * boost
		if p > 1 {
			p = 1
		}
		booked := rng.Float64() < p
		if booked {
			cost *= 1.3 // dwell on interesting views
		}
		if elapsed+cost > budget {
			break
		}
		elapsed += cost
		viz++
		if booked {
			bookmarks++
		}
	}
	return viz, bookmarks
}

// summarize computes mean ± stddev rows.
func summarize(tool string, viz, book, rate []float64) ToolStats {
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	sd := func(xs []float64) float64 {
		if len(xs) < 2 {
			return 0
		}
		m := mean(xs)
		s := 0.0
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return math.Sqrt(s / float64(len(xs)-1))
	}
	return ToolStats{
		Tool:            tool,
		TotalViz:        mean(viz),
		TotalVizSD:      sd(viz),
		Bookmarks:       mean(book),
		BookmarksSD:     sd(book),
		BookmarkRate:    mean(rate),
		BookmarkRateSD:  sd(rate),
		SessionsCounted: len(viz),
	}
}
