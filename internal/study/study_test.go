package study

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// syntheticViews builds an interest map shaped like the census study:
// a few strongly interesting views and a long boring tail.
func syntheticViews(n, interesting int) (map[string]float64, []string) {
	interest := make(map[string]float64, n)
	var keys []string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("v%02d", i)
		keys = append(keys, k)
		if i < interesting {
			interest[k] = 0.30 - 0.02*float64(i)
		} else {
			interest[k] = 0.02
		}
	}
	return interest, keys
}

func TestSimulateLabelsMajorityStructure(t *testing.T) {
	interest, _ := syntheticViews(48, 6)
	labels := SimulateLabels(PanelConfig{Seed: 7}, interest)
	count := 0
	for _, yes := range labels.Interesting {
		if yes {
			count++
		}
	}
	// The paper's panel found ~6 of 48 interesting; the simulation
	// should land in that ballpark.
	if count < 4 || count > 10 {
		t.Errorf("majority-interesting count = %d, want ≈6", count)
	}
	// Strongly planted views must be labelled.
	if !labels.Interesting["v00"] || !labels.Interesting["v01"] {
		t.Error("top planted views should be labelled interesting")
	}
	// Boring tail views must not be.
	if labels.Interesting["v40"] {
		t.Error("boring views should not be labelled interesting")
	}
}

func TestSimulateLabelsDeterministic(t *testing.T) {
	interest, _ := syntheticViews(30, 5)
	a := SimulateLabels(PanelConfig{Seed: 3}, interest)
	b := SimulateLabels(PanelConfig{Seed: 3}, interest)
	for k := range interest {
		if a.Interesting[k] != b.Interesting[k] || a.Votes[k] != b.Votes[k] {
			t.Fatalf("panel not deterministic at %s", k)
		}
	}
	c := SimulateLabels(PanelConfig{Seed: 4}, interest)
	diff := false
	for k := range interest {
		if a.Votes[k] != c.Votes[k] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should produce different votes")
	}
}

func TestROCPerfectRanking(t *testing.T) {
	// Ranking that puts all positives first has AUROC 1.
	interesting := map[string]bool{"a": true, "b": true}
	ranked := []string{"a", "b", "c", "d", "e"}
	points := ROC(ranked, interesting)
	if auroc := AUROC(points); math.Abs(auroc-1) > 1e-9 {
		t.Errorf("perfect AUROC = %g, want 1", auroc)
	}
	// First point is the origin, last is (1,1).
	if points[0].TPR != 0 || points[0].FPR != 0 {
		t.Error("ROC must start at origin")
	}
	last := points[len(points)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Error("ROC must end at (1,1)")
	}
}

func TestROCWorstRanking(t *testing.T) {
	interesting := map[string]bool{"d": true, "e": true}
	ranked := []string{"a", "b", "c", "d", "e"}
	if auroc := AUROC(ROC(ranked, interesting)); auroc > 1e-9 {
		t.Errorf("worst-case AUROC = %g, want 0", auroc)
	}
}

func TestROCKnownMidpoint(t *testing.T) {
	// Paper example: at k=3 with 6 interesting of 48, TPR=0.5 FPR=0
	// when the first 3 are all interesting.
	interest, keys := syntheticViews(48, 6)
	labels := SimulateLabels(PanelConfig{Seed: 7}, interest)
	// Rank by true interest (proxy for deviation ranking).
	ranked := append([]string(nil), keys...)
	sort.SliceStable(ranked, func(i, j int) bool { return interest[ranked[i]] > interest[ranked[j]] })
	points := ROC(ranked, labels.Interesting)
	k3 := points[3]
	if k3.FPR != 0 {
		t.Errorf("FPR at k=3 = %g, want 0", k3.FPR)
	}
	if k3.TPR <= 0.3 {
		t.Errorf("TPR at k=3 = %g, want ≥ 0.3", k3.TPR)
	}
	if auroc := AUROC(points); auroc < 0.85 {
		t.Errorf("aligned-ranking AUROC = %g, want high", auroc)
	}
}

func TestAUROCDegenerate(t *testing.T) {
	if AUROC(nil) != 0 || AUROC([]ROCPoint{{}}) != 0 {
		t.Error("degenerate AUROC should be 0")
	}
	// No positives: TPR stays 0, area 0.
	points := ROC([]string{"a", "b"}, map[string]bool{})
	if AUROC(points) != 0 {
		t.Error("no-positive AUROC should be 0")
	}
}

func TestHeatmap(t *testing.T) {
	interest, keys := syntheticViews(10, 3)
	labels := SimulateLabels(PanelConfig{Seed: 5}, interest)
	hm := Heatmap(keys, labels)
	if len(hm) != 10 {
		t.Fatalf("heatmap length = %d", len(hm))
	}
	// Vote counts must match the labels' votes.
	for i, k := range keys {
		if hm[i] != labels.Votes[k] {
			t.Errorf("heatmap[%d] = %d, votes = %d", i, hm[i], labels.Votes[k])
		}
	}
}

func TestSimulateStudyReproducesTable2Shape(t *testing.T) {
	// Table 2: SEEDB total_viz 10.8 vs MANUAL 6.3; bookmarks 3.5 vs 1.1;
	// rate 0.43 vs 0.14 (≈3X). The simulation must reproduce the
	// qualitative relationships.
	interest, keys := syntheticViews(40, 6)
	ranked := append([]string(nil), keys...)
	sort.SliceStable(ranked, func(i, j int) bool { return interest[ranked[i]] > interest[ranked[j]] })

	seedb, manual := SimulateStudy(StudyConfig{Seed: 11}, ranked, interest)

	if seedb.SessionsCounted != 16 || manual.SessionsCounted != 16 {
		t.Errorf("sessions = %d/%d, want 16 each", seedb.SessionsCounted, manual.SessionsCounted)
	}
	if seedb.TotalViz <= manual.TotalViz {
		t.Errorf("SEEDB total viz (%.1f) should exceed MANUAL (%.1f)", seedb.TotalViz, manual.TotalViz)
	}
	if seedb.Bookmarks < 2*manual.Bookmarks {
		t.Errorf("SEEDB bookmarks (%.2f) should be ≫ MANUAL (%.2f)", seedb.Bookmarks, manual.Bookmarks)
	}
	ratio := seedb.BookmarkRate / math.Max(manual.BookmarkRate, 1e-9)
	if ratio < 2 {
		t.Errorf("bookmark-rate ratio = %.2f, want ≥ 2 (paper: ≈3X)", ratio)
	}
	if seedb.BookmarkRate < 0.2 || seedb.BookmarkRate > 0.7 {
		t.Errorf("SEEDB bookmark rate = %.2f, want in the paper's ballpark (0.43)", seedb.BookmarkRate)
	}
}

func TestSimulateStudyDeterministic(t *testing.T) {
	interest, keys := syntheticViews(30, 5)
	a1, m1 := SimulateStudy(StudyConfig{Seed: 2}, keys, interest)
	a2, m2 := SimulateStudy(StudyConfig{Seed: 2}, keys, interest)
	if a1.TotalViz != a2.TotalViz || m1.Bookmarks != m2.Bookmarks {
		t.Error("study simulation must be deterministic per seed")
	}
}

func TestRunSessionBudget(t *testing.T) {
	// A tiny budget bounds the number of examined views.
	interest, keys := syntheticViews(100, 10)
	s, _ := SimulateStudy(StudyConfig{SessionTime: 2, Seed: 3}, keys, interest)
	if s.TotalViz > 5 {
		t.Errorf("tiny budget examined %.1f views", s.TotalViz)
	}
}

func TestPanelConfigDefaults(t *testing.T) {
	cfg := PanelConfig{}.withDefaults()
	if cfg.Experts != 5 || cfg.Seed != 1 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	scfg := StudyConfig{}.withDefaults()
	if scfg.Analysts != 16 || scfg.SessionTime != 8 {
		t.Errorf("study defaults wrong: %+v", scfg)
	}
}
