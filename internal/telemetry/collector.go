package telemetry

import "time"

// Collector is the process-wide metrics sink a deployment shares across
// engines and backends: the three latency histograms the system
// exports, plus the optional slow-query log. The HTTP server owns one
// and renders it on /metrics; bench experiments own private ones to
// report percentiles. All observe methods are nil-receiver safe, so an
// unconfigured component costs one nil check.
type Collector struct {
	// RequestLatency observes whole Recommend invocations (cold and
	// cached); QueryLatency observes individual paid query executions
	// (cache hits are not executions); ShardLatency observes per-child
	// partial executions inside shard fan-outs, which is what gives
	// straggler percentiles instead of only a max.
	RequestLatency Histogram
	QueryLatency   Histogram
	ShardLatency   Histogram

	// SlowLog, when non-nil, receives entries for operations over
	// threshold. Set it before serving; it is read without a lock.
	SlowLog *SlowLog
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// ObserveRequest records one Recommend invocation's latency.
func (c *Collector) ObserveRequest(d time.Duration) {
	if c != nil {
		c.RequestLatency.Observe(d)
	}
}

// ObserveQuery records one paid query execution's latency.
func (c *Collector) ObserveQuery(d time.Duration) {
	if c != nil {
		c.QueryLatency.Observe(d)
	}
}

// ObserveShard records one shard child execution's latency.
func (c *Collector) ObserveShard(d time.Duration) {
	if c != nil {
		c.ShardLatency.Observe(d)
	}
}

// Slow returns the attached slow log (nil-safe).
func (c *Collector) Slow() *SlowLog {
	if c == nil {
		return nil
	}
	return c.SlowLog
}
