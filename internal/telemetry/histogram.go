package telemetry

import (
	"math/bits"
	"sync"
	"time"
)

// numHistBuckets bounds the log-bucketed histogram: bucket i holds
// observations with d <= 2^i microseconds, so the top finite boundary
// 2^35µs ≈ 9.5 hours comfortably covers any request this system serves.
// Observations past it clamp into the last bucket.
const numHistBuckets = 36

// Histogram is a log2-bucketed latency histogram: fixed memory, one
// short critical section per observation, mergeable, and quantile
// estimates within a factor of 2 (linear interpolation inside the
// matching power-of-two bucket). The zero value is ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts [numHistBuckets]uint64
	count  uint64
	sum    time.Duration
}

// bucketFor maps a duration to its bucket index: the smallest i with
// d <= 2^i microseconds.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	// bits.Len64(x-1) is ceil(log2(x)) for x >= 2.
	i := bits.Len64(us - 1)
	if i >= numHistBuckets {
		return numHistBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's inclusive upper boundary.
func bucketBound(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bucketFor(d)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Merge folds another histogram's observations into h — the same
// discipline Metrics.Merge applies to counters, so per-worker or
// per-shard histograms can aggregate into a process-wide one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	o.mu.Lock()
	counts := o.counts
	count, sum := o.count, o.sum
	o.mu.Unlock()
	h.mu.Lock()
	for i := range counts {
		h.counts[i] += counts[i]
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// HistBucket is one cumulative bucket of a snapshot: the count of
// observations at or below Bound.
type HistBucket struct {
	Bound      time.Duration `json:"bound"`
	Cumulative uint64        `json:"cumulative"`
}

// HistogramSnapshot is a consistent point-in-time view, with quantiles
// precomputed for reports (all in float milliseconds).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// Buckets lists every non-degenerate cumulative bucket up to the
	// first one holding all observations (Prometheus exposition re-adds
	// the +Inf bucket).
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram under one lock acquisition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := h.counts
	count, sum := h.count, h.sum
	h.mu.Unlock()

	snap := HistogramSnapshot{Count: count, SumMS: durMS(sum)}
	cum := uint64(0)
	for i := 0; i < numHistBuckets; i++ {
		cum += counts[i]
		snap.Buckets = append(snap.Buckets, HistBucket{Bound: bucketBound(i), Cumulative: cum})
		if cum == count && count > 0 {
			break
		}
	}
	snap.P50MS = quantile(counts[:], count, 0.50)
	snap.P90MS = quantile(counts[:], count, 0.90)
	snap.P95MS = quantile(counts[:], count, 0.95)
	snap.P99MS = quantile(counts[:], count, 0.99)
	return snap
}

// quantile estimates the q-quantile in milliseconds by walking the
// cumulative distribution and interpolating linearly inside the bucket
// the rank falls in.
func quantile(counts []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := uint64(0)
	for i := range counts {
		prev := cum
		cum += counts[i]
		if float64(cum) >= rank && counts[i] > 0 {
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketBound(i - 1)
			}
			upper := bucketBound(i)
			frac := (rank - float64(prev)) / float64(counts[i])
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return durMS(lower) + frac*durMS(upper-lower)
		}
	}
	return durMS(bucketBound(numHistBuckets - 1))
}
