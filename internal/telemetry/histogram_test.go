package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},                // 1024µs > 1ms? 1ms = 1000µs → 2^10 = 1024 ≥ 1000
		{time.Second, 20},                     // 1e6µs ≤ 2^20 = 1048576
		{500 * time.Hour, numHistBuckets - 1}, // clamps
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d", snap.Count)
	}
	// p50 must live in the ~1ms bucket (≤ ~1.024ms upper bound), p99 in
	// the bucket containing 100ms (upper bound 131ms).
	if snap.P50MS <= 0 || snap.P50MS > 1.1 {
		t.Fatalf("p50 = %vms", snap.P50MS)
	}
	if snap.P99MS < 50 || snap.P99MS > 140 {
		t.Fatalf("p99 = %vms", snap.P99MS)
	}
	if snap.P90MS > snap.P95MS || snap.P95MS > snap.P99MS {
		t.Fatalf("quantiles not monotone: p90=%v p95=%v p99=%v", snap.P90MS, snap.P95MS, snap.P99MS)
	}
	if snap.SumMS < 1000 || snap.SumMS > 1200 {
		t.Fatalf("sum = %vms, want ~1090", snap.SumMS)
	}
	// Buckets are cumulative and end at the total count.
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.Cumulative != 100 {
		t.Fatalf("last bucket cumulative = %d", last.Cumulative)
	}
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Cumulative < snap.Buckets[i-1].Cumulative {
			t.Fatalf("bucket %d not cumulative", i)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P99MS != 0 || snap.SumMS != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	b.Observe(2 * time.Second)
	a.Merge(&b)
	if got := a.Count(); got != 3 {
		t.Fatalf("merged count = %d", got)
	}
	snap := a.Snapshot()
	if snap.SumMS < 3000 || snap.SumMS > 3002 {
		t.Fatalf("merged sum = %v", snap.SumMS)
	}
	// Merging nil and self must be safe no-ops.
	a.Merge(nil)
	a.Merge(&a)
	if got := a.Count(); got != 3 {
		t.Fatalf("count after nil/self merge = %d", got)
	}
	// b is untouched by the merge.
	if got := b.Count(); got != 2 {
		t.Fatalf("source count = %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d", got)
	}
}
