package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): "# HELP" / "# TYPE" headers followed by sample
// lines. It is the whole dependency surface of the /metrics endpoint —
// no client library, just the format.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// header writes the HELP/TYPE preamble for one metric family.
func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter writes one unlabeled counter.
func (p *PromWriter) Counter(name, help string, value float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, formatFloat(value))
}

// CounterVec writes one counter family with a single label, in sorted
// label-value order so scrapes are byte-stable.
func (p *PromWriter) CounterVec(name, help, label string, values map[string]float64) {
	p.header(name, help, "counter")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.printf("%s{%s=%q} %s\n", name, label, escapeLabel(k), formatFloat(values[k]))
	}
}

// Gauge writes one unlabeled gauge.
func (p *PromWriter) Gauge(name, help string, value float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, formatFloat(value))
}

// GaugeVec writes one gauge family with a single label, in sorted
// label-value order so scrapes are byte-stable.
func (p *PromWriter) GaugeVec(name, help, label string, values map[string]float64) {
	p.header(name, help, "gauge")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.printf("%s{%s=%q} %s\n", name, label, escapeLabel(k), formatFloat(values[k]))
	}
}

// Histogram writes one histogram family from a snapshot, converting the
// microsecond-based bucket bounds to seconds (the Prometheus base unit)
// and closing with the mandatory +Inf bucket, _sum and _count.
func (p *PromWriter) Histogram(name, help string, snap HistogramSnapshot) {
	p.header(name, help, "histogram")
	for _, b := range snap.Buckets {
		p.printf("%s_bucket{le=%q} %d\n", name, formatFloat(b.Bound.Seconds()), b.Cumulative)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	p.printf("%s_sum %s\n", name, formatFloat(snap.SumMS/1e3))
	p.printf("%s_count %d\n", name, snap.Count)
}

// formatFloat renders a float the exposition format accepts, preferring
// integers' exact form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format. %q above
// already escapes backslash, quote and newline the same way Prometheus
// requires; this pre-pass only strips characters %q would render as Go
// escapes Prometheus does not know.
func escapeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 && r != '\n' {
			return ' '
		}
		return r
	}, s)
}

// ValidatePrometheusText is a self-contained syntax checker for the
// text exposition format — the CI scrape step and the server tests run
// every /metrics payload through it, with no external linter dependency.
// It checks line syntax (metric and label names, label-value escaping,
// float-parseable sample values), HELP/TYPE placement (at most one
// each, before the family's samples), duplicate series, and histogram
// shape: cumulative _bucket counts must be non-decreasing in le order,
// the +Inf bucket must exist and equal _count.
func ValidatePrometheusText(data []byte) error {
	type family struct {
		typ       string
		helpSeen  bool
		typeSeen  bool
		samples   int
		bucketCum map[string]float64 // le → cumulative (histograms)
		bucketInf float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	families := make(map[string]*family)
	fam := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
		}
		return f
	}
	seenSeries := make(map[string]bool)

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" {
				continue // plain comment
			}
			f := fam(name)
			if f.samples > 0 {
				return fmt.Errorf("line %d: # %s %s after samples of %s", lineNo, kind, name, name)
			}
			switch kind {
			case "HELP":
				if f.helpSeen {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.helpSeen = true
			case "TYPE":
				if f.typeSeen {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				f.typeSeen = true
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		series := name + "{" + canonicalLabels(labels) + "}"
		if seenSeries[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seenSeries[series] = true

		// Histogram child samples account against their base family.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if bf, ok := families[trimmed]; ok && (bf.typ == "histogram" || bf.typ == "summary") {
					base = trimmed
				}
				break
			}
		}
		f := fam(base)
		f.samples++
		if f.typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %s lacks le label", lineNo, name)
				}
				if f.bucketCum == nil {
					f.bucketCum = make(map[string]float64)
				}
				f.bucketCum[le] = value
				if le == "+Inf" {
					f.bucketInf, f.hasInf = value, true
				}
			case strings.HasSuffix(name, "_count"):
				f.count, f.hasCount = value, true
			}
		}
	}

	for name, f := range families {
		if f.typ != "histogram" {
			continue
		}
		if f.samples == 0 {
			continue // declared but not exported; legal
		}
		if !f.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", name)
		}
		if !f.hasCount {
			return fmt.Errorf("histogram %s: missing _count", name)
		}
		if f.bucketInf != f.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", name, f.bucketInf, f.count)
		}
		// Cumulative counts must be non-decreasing in ascending le order.
		type lb struct {
			le  float64
			cum float64
		}
		var bounds []lb
		for le, cum := range f.bucketCum {
			if le == "+Inf" {
				bounds = append(bounds, lb{math.Inf(1), cum})
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", name, le)
			}
			bounds = append(bounds, lb{v, cum})
		}
		sort.Slice(bounds, func(a, b int) bool { return bounds[a].le < bounds[b].le })
		for i := 1; i < len(bounds); i++ {
			if bounds[i].cum < bounds[i-1].cum {
				return fmt.Errorf("histogram %s: bucket counts decrease at le=%v", name, bounds[i].le)
			}
		}
	}
	return nil
}

// parseComment parses a "# HELP name ..." / "# TYPE name kind" line.
// Plain comments return kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	switch {
	case strings.HasPrefix(body, "HELP "):
		kind, body = "HELP", strings.TrimPrefix(body, "HELP ")
	case strings.HasPrefix(body, "TYPE "):
		kind, body = "TYPE", strings.TrimPrefix(body, "TYPE ")
	default:
		return "", "", "", nil
	}
	fields := strings.SplitN(body, " ", 2)
	name = fields[0]
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q in %s line", name, kind)
	}
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("TYPE line for %s lacks a type", name)
	}
	return kind, name, rest, nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			j := 0
			for j < len(rest) && isLabelChar(rest[j], j == 0) {
				j++
			}
			lname := rest[:j]
			if lname == "" || !strings.HasPrefix(rest[j:], "=\"") {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			rest = rest[j+2:]
			var val strings.Builder
			closed := false
			for k := 0; k < len(rest); k++ {
				c := rest[k]
				if c == '\\' {
					if k+1 >= len(rest) {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					k++
					switch rest[k] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", rest[k], line)
					}
					continue
				}
				if c == '"' {
					rest = rest[k+1:]
					closed = true
					break
				}
				if c == '\n' {
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q in %q", lname, line)
			}
			labels[lname] = val.String()
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] after %q", name)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parsePromFloat accepts the exposition format's float grammar,
// including +Inf/-Inf/NaN spellings.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// canonicalLabels renders a label set sorted, for duplicate detection.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
