package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestPromWriterOutputValidates(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("seedb_queries_executed_total", "Queries executed.", 42)
	p.CounterVec("seedb_fallback_queries_by_reason_total", "Fallbacks by reason.",
		"reason", map[string]float64{"serial execution": 3, `weird "quoted"` + "\nreason": 1})
	p.Gauge("seedb_cache_bytes", "Cache occupancy.", 1234.5)
	p.Histogram("seedb_request_duration_seconds", "Request latency.", h.Snapshot())
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := b.String()

	if err := ValidatePrometheusText([]byte(out)); err != nil {
		t.Fatalf("writer output rejected by validator: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE seedb_request_duration_seconds histogram",
		`seedb_request_duration_seconds_bucket{le="+Inf"} 2`,
		"seedb_request_duration_seconds_count 2",
		"seedb_queries_executed_total 42",
		`reason="serial execution"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	good := `# HELP x_total A counter.
# TYPE x_total counter
x_total 5
# TYPE y gauge
y{a="1",b="two words"} 2.5 1700000000000
# TYPE h histogram
h_bucket{le="0.1"} 1
h_bucket{le="+Inf"} 2
h_sum 0.3
h_count 2
`
	if err := ValidatePrometheusText([]byte(good)); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":    "1bad 5\n",
		"bad value":          "x five\n",
		"duplicate series":   "x 1\nx 2\n",
		"duplicate label":    `x{a="1",a="2"} 3` + "\n",
		"unterminated label": `x{a="1} 3` + "\n",
		"type after sample":  "x 1\n# TYPE x counter\n",
		"unknown type":       "# TYPE x widget\nx 1\n",
		"duplicate TYPE":     "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"missing +Inf":       "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
		"inf != count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"bucket without le":  "# TYPE h histogram\nh_bucket 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for name, payload := range cases {
		if err := ValidatePrometheusText([]byte(payload)); err == nil {
			t.Errorf("%s: invalid payload accepted:\n%s", name, payload)
		}
	}
}
