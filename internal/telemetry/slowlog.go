package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultSlowThreshold is the slow-query threshold when the log was
// created without one.
const DefaultSlowThreshold = 100 * time.Millisecond

// SlowLog is the structured slow-query log: JSON lines, one per
// operation that crossed the threshold. Writes are serialized under one
// mutex so concurrent requests never interleave partial lines. All
// methods are nil-receiver safe, so callers hold a *SlowLog that may
// simply not be configured.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// NewSlowLog creates a slow log writing JSON lines to w. threshold <= 0
// selects DefaultSlowThreshold; per-request thresholds
// (core.Options.SlowQueryThreshold) override it per invocation.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Threshold returns the log's default threshold (0 when l is nil).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// SlowEntry is one slow-query log line. Kind distinguishes a single SQL
// query ("query") from a whole Recommend invocation ("request"); the
// server also routes recovered handler panics here as Kind "panic" —
// the slow log is the process's one structured operational sink.
type SlowEntry struct {
	Time string `json:"time"` // RFC3339Nano wall clock
	Kind string `json:"kind"` // "query" | "request"
	// Table and SQL identify the work; SQL is the canonical statement
	// text for queries and the target predicate for requests.
	Table string `json:"table,omitempty"`
	SQL   string `json:"sql,omitempty"`
	// Lo/Hi is the row range of a phased query execution (0/0 = full).
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// ElapsedMS crossed ThresholdMS — that is why the entry exists.
	ElapsedMS   float64 `json:"elapsed_ms"`
	ThresholdMS float64 `json:"threshold_ms"`
	// Exec stats for queries; invocation counters for requests.
	RowsScanned    int64  `json:"rows_scanned,omitempty"`
	Vectorized     bool   `json:"vectorized,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	ShardFanout    int    `json:"shard_fanout,omitempty"`
	Queries        int    `json:"queries_executed,omitempty"`
	Strategy       string `json:"strategy,omitempty"`
	// TraceID joins the entry against the trace store (GET
	// /api/traces/{id}) when the request was traced or head-sampled;
	// Trace is the span subtree of the slow operation itself.
	TraceID string    `json:"trace_id,omitempty"`
	Trace   *SpanNode `json:"trace,omitempty"`
	// Path and Stack describe a recovered handler panic (Kind "panic"):
	// the request path that triggered it and the goroutine stack.
	Path  string `json:"path,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// Log emits one entry, stamping the wall-clock time. Nil-safe no-op.
func (l *SlowLog) Log(e SlowEntry) {
	if l == nil {
		return
	}
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return // an unmarshalable entry is not worth failing a query over
	}
	data = append(data, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(data)
	l.mu.Unlock()
}
