package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowLogEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 0)
	if l.Threshold() != DefaultSlowThreshold {
		t.Fatalf("default threshold = %v", l.Threshold())
	}
	l.Log(SlowEntry{Kind: "query", Table: "census", SQL: "SELECT 1", ElapsedMS: 12.5, ThresholdMS: 10})
	l.Log(SlowEntry{Kind: "request", Table: "census", ElapsedMS: 40, ThresholdMS: 10,
		Trace: &SpanNode{Name: "recommend", DurMS: 40}})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var q SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &q); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if q.Kind != "query" || q.SQL != "SELECT 1" || q.Time == "" {
		t.Fatalf("entry = %+v", q)
	}
	if _, err := time.Parse(time.RFC3339Nano, q.Time); err != nil {
		t.Fatalf("timestamp %q: %v", q.Time, err)
	}
	var r SlowEntry
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if r.Trace == nil || r.Trace.Name != "recommend" {
		t.Fatalf("request entry trace = %+v", r.Trace)
	}
}

func TestSlowLogNilSafe(t *testing.T) {
	var l *SlowLog
	if l.Threshold() != 0 {
		t.Fatal("nil threshold must be 0")
	}
	l.Log(SlowEntry{Kind: "query"}) // must not panic

	var c *Collector
	c.ObserveRequest(time.Millisecond)
	c.ObserveQuery(time.Millisecond)
	c.ObserveShard(time.Millisecond)
	if c.Slow() != nil {
		t.Fatal("nil collector Slow() must be nil")
	}
}

func TestSlowLogConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				l.Log(SlowEntry{Kind: "query", SQL: strings.Repeat("x", 100)})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 320 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("line %d is not valid JSON: %q", i, ln)
		}
	}
}
