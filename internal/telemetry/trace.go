// Package telemetry is the zero-dependency observability substrate:
// context-propagated span tracing, log-bucketed latency histograms,
// Prometheus text exposition, and the structured slow-query log. Every
// layer of the system (core engine, sqldb executor, cache, shard
// router, HTTP server) instruments itself through this package; nothing
// here imports any other seedb package, so every layer can.
//
// Tracing is opt-in per request: spans only exist when the caller
// attached a Trace to the context with WithTrace. Without one,
// StartSpan returns a nil *Span whose methods are all no-ops, so the
// disabled cost of an instrumentation site is one context value lookup
// — small enough to leave the instrumentation on permanently (the
// bench harness guards the overhead below 2%).
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// spanKey is the context key a trace's current span travels under.
type spanKey struct{}

// Trace is one request's trace: a tree of timed spans rooted at the
// span WithTrace created. Safe for concurrent span attachment.
type Trace struct {
	start time.Time
	root  *Span
}

// Span is one timed operation inside a trace. Spans are created with
// StartSpan, annotated with SetAttr and closed with End; children
// attach concurrently (query worker pools, shard fan-out). All methods
// are nil-receiver safe, which is what makes the untraced path free.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
}

// WithTrace attaches a new trace to ctx, rooted at a span with the
// given name. The returned context carries the root span, so every
// StartSpan below it builds the tree. Finish the trace (which ends the
// root) before reading the tree.
func WithTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if ctx == nil {
		ctx = context.Background()
	}
	now := time.Now()
	tr := &Trace{start: now, root: &Span{name: name, start: now}}
	return context.WithValue(ctx, spanKey{}, tr.root), tr
}

// StartSpan starts a child span under the context's current span. When
// the context carries no trace (or is nil), it returns ctx unchanged
// and a nil span — the no-op fast path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span, recording its duration. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Node snapshots the span's subtree relative to the given trace start
// time (zero time = the span's own start). Open spans report the
// duration elapsed so far. Nil-safe (returns nil).
func (s *Span) Node() *SpanNode {
	if s == nil {
		return nil
	}
	return s.node(s.start)
}

func (s *Span) node(origin time.Time) *SpanNode {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	n := &SpanNode{
		Name:    s.name,
		StartMS: durMS(s.start.Sub(origin)),
		DurMS:   durMS(dur),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.node(origin))
	}
	return n
}

// Open lists the names of spans still open, excluding the root (which
// Finish closes). Instrumented code that defers End around every
// execution path — cancellation included — keeps this empty by the
// time its caller returns.
func (tr *Trace) Open() []string {
	var open []string
	var walk func(s *Span, root bool)
	walk = func(s *Span, root bool) {
		s.mu.Lock()
		ended := s.ended
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		if !ended && !root {
			open = append(open, s.name)
		}
		for _, c := range children {
			walk(c, false)
		}
	}
	walk(tr.root, true)
	return open
}

// Finish ends the root span (and any still-open descendants, which keep
// the duration elapsed at finish time) and returns the trace tree.
func (tr *Trace) Finish() *SpanNode {
	tr.endAll(tr.root)
	return tr.root.node(tr.start)
}

// endAll ends every span in the subtree that is still open.
func (tr *Trace) endAll(s *Span) {
	s.End()
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		tr.endAll(c)
	}
}

// Root returns the trace's root span.
func (tr *Trace) Root() *Span { return tr.root }

// SpanNode is one node of an exported trace tree: the JSON shape the
// server returns under "trace" and the slow-query log embeds.
type SpanNode struct {
	Name string `json:"name"`
	// StartMS is the span's start offset from its tree's origin, in
	// milliseconds; DurMS is its wall-clock duration.
	StartMS  float64           `json:"start_ms"`
	DurMS    float64           `json:"duration_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Find returns the first node named name in a pre-order walk, or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// ChildrenDurMS sums the node's direct children's durations — the
// "explained" share of the node's own duration (children that overlap
// in time, e.g. a worker pool's, may sum past it).
func (n *SpanNode) ChildrenDurMS() float64 {
	total := 0.0
	for _, c := range n.Children {
		total += c.DurMS
	}
	return total
}

// Render formats the tree as indented text for terminals (seedb -trace).
// Attributes print sorted, so output is stable.
func (n *SpanNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *SpanNode) render(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%-*s %9.3fms", strings.Repeat("  ", depth), 24-2*depth, n.Name, n.DurMS)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%s", k, n.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// durMS converts a duration to float milliseconds.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
