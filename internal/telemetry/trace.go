// Package telemetry is the zero-dependency observability substrate:
// context-propagated span tracing, log-bucketed latency histograms,
// Prometheus text exposition, and the structured slow-query log. Every
// layer of the system (core engine, sqldb executor, cache, shard
// router, HTTP server) instruments itself through this package; nothing
// here imports any other seedb package, so every layer can.
//
// Tracing is opt-in per request: spans only exist when the caller
// attached a Trace to the context with WithTrace. Without one,
// StartSpan returns a nil *Span whose methods are all no-ops, so the
// disabled cost of an instrumentation site is one context value lookup
// — small enough to leave the instrumentation on permanently (the
// bench harness guards the overhead below 2%).
package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// spanKey is the context key a trace's current span travels under.
type spanKey struct{}

// DefaultSpanBudget caps how many spans one trace may materialize. A
// traced request over a huge view space creates one span per query;
// past the budget, StartSpan degrades to counting — it returns a nil
// span and the trace's root gains a spans_dropped attribute at Finish —
// instead of growing the tree (and the trace store) without bound.
const DefaultSpanBudget = 4096

// TraceparentHeader is the HTTP header netbe clients stamp on every
// wire call ("/api/query" and "/api/backend/*") so the child server can
// open its own trace under the caller's: "00-<32 hex trace id>-<16 hex
// span id>-01", the W3C traceparent layout.
const TraceparentHeader = "Traceparent"

// traceState is the per-trace state every span shares: the 128-bit
// trace identity and the span-budget accounting.
type traceState struct {
	id      string // 32 lowercase hex chars (128-bit)
	budget  int64
	spans   atomic.Int64 // spans materialized, root included
	dropped atomic.Int64 // StartSpan calls refused by the budget
}

// Trace is one request's trace: a tree of timed spans rooted at the
// span WithTrace created, identified by a random 128-bit trace ID.
// Safe for concurrent span attachment.
type Trace struct {
	start      time.Time
	root       *Span
	st         *traceState
	parentSpan string // remote parent span ID ("" for a locally rooted trace)
}

// Span is one timed operation inside a trace. Spans are created with
// StartSpan, annotated with SetAttr and closed with End; children
// attach concurrently (query worker pools, shard fan-out). All methods
// are nil-receiver safe, which is what makes the untraced path free.
type Span struct {
	name  string
	id    string // 16 lowercase hex chars (64-bit)
	start time.Time
	st    *traceState

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
	// remote holds pre-serialized span subtrees grafted from other
	// processes (AttachRemote); Node emits them after the local children
	// with their offsets rebased onto this span's start.
	remote []*SpanNode
}

// newID returns n random bytes as lowercase hex. crypto/rand failure is
// unrecoverable enough to not matter for observability identifiers; a
// zero ID is still a valid (if unlucky) one.
func newID(n int) string {
	b := make([]byte, n)
	_, _ = crand.Read(b)
	return hex.EncodeToString(b)
}

// WithTrace attaches a new trace to ctx, rooted at a span with the
// given name and identified by a fresh random 128-bit trace ID. The
// returned context carries the root span, so every StartSpan below it
// builds the tree. Finish the trace (which ends the root) before
// reading the tree.
func WithTrace(ctx context.Context, name string) (context.Context, *Trace) {
	return withTrace(ctx, name, newID(16), "", DefaultSpanBudget)
}

// WithTraceBudget is WithTrace with an explicit span budget (<= 0
// selects DefaultSpanBudget).
func WithTraceBudget(ctx context.Context, name string, budget int) (context.Context, *Trace) {
	return withTrace(ctx, name, newID(16), "", budget)
}

// WithRemoteTrace attaches a trace continuing a remote caller's:
// it adopts the caller's trace ID (falling back to a fresh one when the
// ID is not 32 hex chars) and records the caller's span ID as the
// parent, so the child-side tree the wire response carries home can be
// stitched under the exact span that issued the call.
func WithRemoteTrace(ctx context.Context, name, traceID, parentSpanID string) (context.Context, *Trace) {
	if !validHexID(traceID, 32) {
		traceID = newID(16)
	}
	return withTrace(ctx, name, traceID, parentSpanID, DefaultSpanBudget)
}

func withTrace(ctx context.Context, name, traceID, parentSpanID string, budget int) (context.Context, *Trace) {
	if ctx == nil {
		ctx = context.Background()
	}
	if budget <= 0 {
		budget = DefaultSpanBudget
	}
	now := time.Now()
	st := &traceState{id: traceID, budget: int64(budget)}
	st.spans.Store(1) // the root
	tr := &Trace{
		start:      now,
		root:       &Span{name: name, id: newID(8), start: now, st: st},
		st:         st,
		parentSpan: parentSpanID,
	}
	return context.WithValue(ctx, spanKey{}, tr.root), tr
}

// StartSpan starts a child span under the context's current span. When
// the context carries no trace (or is nil), it returns ctx unchanged
// and a nil span — the no-op fast path. When the trace's span budget is
// exhausted it also returns a nil span, counting the refusal instead of
// growing the tree (the count surfaces as the root's spans_dropped
// attribute).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	if st := parent.st; st != nil {
		// Racing creators may overshoot the budget by a handful of spans;
		// the budget bounds growth, it is not an exact quota.
		if st.spans.Load() >= st.budget {
			st.dropped.Add(1)
			return ctx, nil
		}
		st.spans.Add(1)
	}
	sp := &Span{name: name, id: newID(8), start: time.Now(), st: parent.st}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// TraceID returns the 128-bit trace ID the span belongs to ("" on a nil
// span), which is how slow-log entries join against the trace store.
func (s *Span) TraceID() string {
	if s == nil || s.st == nil {
		return ""
	}
	return s.st.id
}

// SpanID returns the span's 64-bit ID ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Traceparent renders the span as an outgoing propagation header value,
// "00-<trace id>-<span id>-01". Empty on a nil span, so untraced calls
// send no header.
func (s *Span) Traceparent() string {
	if s == nil || s.st == nil {
		return ""
	}
	return "00-" + s.st.id + "-" + s.id + "-01"
}

// ParseTraceparent splits an incoming propagation header into the
// caller's trace and span IDs. ok is false for absent or malformed
// values — the callee then simply does not trace.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	if !validHexID(parts[1], 32) || !validHexID(parts[2], 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// validHexID reports whether s is exactly n lowercase hex characters.
func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ShouldSample makes one head-sampling decision at probability p
// (p <= 0 never samples, p >= 1 always does).
func ShouldSample(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rand.Float64() < p
}

// AttachRemote grafts a span subtree produced by another process (the
// child tree a wire response carries) under this span. The subtree is
// emitted after the local children when the trace is snapshotted, with
// its offsets rebased onto this span's start — the network gap between
// the two processes shows up as the difference between this span's
// duration and the grafted root's. Nil-safe on both sides.
func (s *Span) AttachRemote(n *SpanNode) {
	if s == nil || n == nil {
		return
	}
	s.mu.Lock()
	s.remote = append(s.remote, n)
	s.mu.Unlock()
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span, recording its duration. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Node snapshots the span's subtree relative to the given trace start
// time (zero time = the span's own start). Open spans report the
// duration elapsed so far. Nil-safe (returns nil).
func (s *Span) Node() *SpanNode {
	if s == nil {
		return nil
	}
	return s.node(s.start)
}

func (s *Span) node(origin time.Time) *SpanNode {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	n := &SpanNode{
		Name:    s.name,
		StartMS: durMS(s.start.Sub(origin)),
		DurMS:   durMS(dur),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	remote := append([]*SpanNode(nil), s.remote...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.node(origin))
	}
	for _, rn := range remote {
		n.Children = append(n.Children, shiftNode(rn, n.StartMS))
	}
	return n
}

// shiftNode deep-copies a remote subtree with every offset shifted by
// deltaMS, rebasing the child process's trace origin onto the grafting
// span's start.
func shiftNode(n *SpanNode, deltaMS float64) *SpanNode {
	out := &SpanNode{
		Name:    n.Name,
		StartMS: n.StartMS + deltaMS,
		DurMS:   n.DurMS,
	}
	if len(n.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			out.Attrs[k] = v
		}
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, shiftNode(c, deltaMS))
	}
	return out
}

// Open lists the names of spans still open, excluding the root (which
// Finish closes). Instrumented code that defers End around every
// execution path — cancellation included — keeps this empty by the
// time its caller returns.
func (tr *Trace) Open() []string {
	var open []string
	var walk func(s *Span, root bool)
	walk = func(s *Span, root bool) {
		s.mu.Lock()
		ended := s.ended
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		if !ended && !root {
			open = append(open, s.name)
		}
		for _, c := range children {
			walk(c, false)
		}
	}
	walk(tr.root, true)
	return open
}

// Finish ends the root span (and any still-open descendants, which keep
// the duration elapsed at finish time) and returns the trace tree. When
// the span budget refused spans, the root carries a spans_dropped
// attribute with the refusal count.
func (tr *Trace) Finish() *SpanNode {
	if d := tr.st.dropped.Load(); d > 0 {
		tr.root.SetAttr("spans_dropped", fmt.Sprintf("%d", d))
	}
	tr.endAll(tr.root)
	return tr.root.node(tr.start)
}

// ID returns the trace's 128-bit identifier (32 hex chars).
func (tr *Trace) ID() string { return tr.st.id }

// ParentSpanID returns the remote caller's span ID for a trace opened
// with WithRemoteTrace ("" otherwise).
func (tr *Trace) ParentSpanID() string { return tr.parentSpan }

// SpansDropped returns how many StartSpan calls the span budget has
// refused so far.
func (tr *Trace) SpansDropped() int64 { return tr.st.dropped.Load() }

// endAll ends every span in the subtree that is still open.
func (tr *Trace) endAll(s *Span) {
	s.End()
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		tr.endAll(c)
	}
}

// Root returns the trace's root span.
func (tr *Trace) Root() *Span { return tr.root }

// SpanNode is one node of an exported trace tree: the JSON shape the
// server returns under "trace" and the slow-query log embeds.
type SpanNode struct {
	Name string `json:"name"`
	// StartMS is the span's start offset from its tree's origin, in
	// milliseconds; DurMS is its wall-clock duration.
	StartMS  float64           `json:"start_ms"`
	DurMS    float64           `json:"duration_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Find returns the first node named name in a pre-order walk, or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// ChildrenDurMS sums the node's direct children's durations — the
// "explained" share of the node's own duration (children that overlap
// in time, e.g. a worker pool's, may sum past it).
func (n *SpanNode) ChildrenDurMS() float64 {
	total := 0.0
	for _, c := range n.Children {
		total += c.DurMS
	}
	return total
}

// Render formats the tree as indented text for terminals (seedb -trace).
// Attributes print sorted, so output is stable.
func (n *SpanNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *SpanNode) render(b *strings.Builder, depth int) {
	name := n.Name
	if n.Attrs["remote"] != "" {
		// Mark subtrees that ran in another process (netbe child spans).
		name = "» " + name
	}
	fmt.Fprintf(b, "%s%-*s %9.3fms", strings.Repeat("  ", depth), 24-2*depth, name, n.DurMS)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%s", k, n.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// durMS converts a duration to float milliseconds.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
