package telemetry

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestTraceAndSpanIDs pins the identity format: 32-hex trace IDs,
// 16-hex span IDs, and a W3C-shaped traceparent that round-trips
// through ParseTraceparent.
func TestTraceAndSpanIDs(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), "req")
	if !validHexID(tr.ID(), 32) {
		t.Errorf("trace ID %q is not 32 hex chars", tr.ID())
	}
	_, sp := StartSpan(ctx, "work")
	if !validHexID(sp.SpanID(), 16) {
		t.Errorf("span ID %q is not 16 hex chars", sp.SpanID())
	}
	if sp.TraceID() != tr.ID() {
		t.Errorf("span trace ID %q != trace ID %q", sp.TraceID(), tr.ID())
	}

	tp := sp.Traceparent()
	want := "00-" + tr.ID() + "-" + sp.SpanID() + "-01"
	if tp != want {
		t.Errorf("traceparent = %q, want %q", tp, want)
	}
	tid, sid, ok := ParseTraceparent(tp)
	if !ok || tid != tr.ID() || sid != sp.SpanID() {
		t.Errorf("ParseTraceparent(%q) = %q %q %v", tp, tid, sid, ok)
	}
	sp.End()
	tr.Finish()

	// Two traces never share an ID.
	_, tr2 := WithTrace(context.Background(), "req")
	if tr2.ID() == tr.ID() {
		t.Error("consecutive traces share an ID")
	}
	tr2.Finish()

	// A nil span has no identity and no traceparent.
	var nilSpan *Span
	if nilSpan.TraceID() != "" || nilSpan.SpanID() != "" || nilSpan.Traceparent() != "" {
		t.Error("nil span leaked an identity")
	}
}

// TestParseTraceparentRejects pins the malformed-header contract:
// anything that is not exactly 00-<32hex>-<16hex>-<flags> is ignored.
func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-short-abcdef0123456789-01",
		"00-0123456789abcdef0123456789abcdef-short-01",
		"99-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // unknown version
		"00-0123456789abcdef0123456789abcdeZ-0123456789abcdef-01", // non-hex
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",    // missing flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

// TestWithRemoteTrace pins the adoption contract: a child process
// joining a distributed trace keeps the caller's trace ID and records
// the caller's span as its parent; an invalid inbound ID falls back to
// a fresh identity rather than propagating garbage.
func TestWithRemoteTrace(t *testing.T) {
	const tid = "0123456789abcdef0123456789abcdef"
	const psid = "0123456789abcdef"
	_, tr := WithRemoteTrace(context.Background(), "child.query", tid, psid)
	if tr.ID() != tid {
		t.Errorf("remote trace ID = %q, want adopted %q", tr.ID(), tid)
	}
	if tr.ParentSpanID() != psid {
		t.Errorf("parent span ID = %q, want %q", tr.ParentSpanID(), psid)
	}
	tr.Finish()

	_, tr = WithRemoteTrace(context.Background(), "child.query", "not-hex", psid)
	if tr.ID() == "not-hex" || !validHexID(tr.ID(), 32) {
		t.Errorf("invalid inbound ID adopted: %q", tr.ID())
	}
	tr.Finish()
}

// TestSpanBudgetDegradesToCounting pins satellite behavior: once a
// trace's span budget is exhausted, StartSpan returns a nil span (the
// no-op fast path) instead of growing the tree, the drop count
// accumulates, and Finish stamps spans_dropped on the root.
func TestSpanBudgetDegradesToCounting(t *testing.T) {
	ctx, tr := WithTraceBudget(context.Background(), "req", 3)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "child")
		if i < 2 {
			if sp == nil {
				t.Fatalf("span %d under budget was dropped", i)
			}
		} else if sp != nil {
			t.Fatalf("span %d over budget materialized", i)
		}
		sp.End()
	}
	if got := tr.SpansDropped(); got != 8 {
		t.Errorf("SpansDropped = %d, want 8", got)
	}
	node := tr.Finish()
	if len(node.Children) != 2 {
		t.Errorf("%d children in tree, want 2", len(node.Children))
	}
	if node.Attrs["spans_dropped"] != "8" {
		t.Errorf("root spans_dropped attr = %q, want 8", node.Attrs["spans_dropped"])
	}
}

// TestDefaultBudgetUnreachedLeavesNoAttr: a trace that never drops a
// span does not carry a spans_dropped attr.
func TestDefaultBudgetUnreachedLeavesNoAttr(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), "req")
	_, sp := StartSpan(ctx, "child")
	sp.End()
	node := tr.Finish()
	if _, ok := node.Attrs["spans_dropped"]; ok {
		t.Errorf("unexpected spans_dropped attr: %v", node.Attrs)
	}
}

// TestAttachRemoteStitchesSubtree pins the cross-process grafting
// contract: a remote child tree attaches beneath the grafting span with
// its start offsets rebased onto that span's timeline, and the renderer
// marks remote spans with a "»" prefix.
func TestAttachRemoteStitchesSubtree(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), "req")
	_, sp := StartSpan(ctx, "net.exec")
	remote := &SpanNode{
		Name:    "child.query",
		StartMS: 0,
		DurMS:   5,
		Attrs:   map[string]string{"remote": "child"},
		Children: []*SpanNode{
			{Name: "sqldb.scan", StartMS: 1, DurMS: 3},
		},
	}
	sp.AttachRemote(remote)
	sp.End()
	node := tr.Finish()

	graft := node.Find("net.exec")
	if graft == nil {
		t.Fatalf("no net.exec span:\n%s", node.Render())
	}
	got := graft.Find("child.query")
	if got == nil {
		t.Fatalf("remote subtree not attached:\n%s", node.Render())
	}
	if got == remote {
		t.Error("remote subtree attached by reference, want deep copy")
	}
	// The remote root's local StartMS (0) is rebased onto the grafting
	// span's own start offset; the relative child offset survives.
	if got.StartMS != graft.StartMS {
		t.Errorf("remote root StartMS = %v, want grafting span's %v", got.StartMS, graft.StartMS)
	}
	scan := got.Find("sqldb.scan")
	if scan == nil {
		t.Fatalf("remote child span missing:\n%s", node.Render())
	}
	if delta := scan.StartMS - got.StartMS; delta != 1 {
		t.Errorf("remote child relative offset = %v, want 1", delta)
	}
	if !strings.Contains(node.Render(), "» child.query") {
		t.Errorf("remote marker missing from render:\n%s", node.Render())
	}
	// Attaching to a nil span is a safe no-op.
	var nilSpan *Span
	nilSpan.AttachRemote(remote)
}

// TestShouldSampleEdges: p<=0 never samples, p>=1 always does.
func TestShouldSampleEdges(t *testing.T) {
	for i := 0; i < 100; i++ {
		if ShouldSample(0) {
			t.Fatal("ShouldSample(0) = true")
		}
		if !ShouldSample(1) {
			t.Fatal("ShouldSample(1) = false")
		}
	}
}

// TestTraceStoreRetention covers the ring: add/get/list ordering,
// count-cap eviction with drop accounting, and stats.
func TestTraceStoreRetention(t *testing.T) {
	ts := NewTraceStore(3, 0)
	for i := 0; i < 5; i++ {
		ts.Add("id"+strconv.Itoa(i), &SpanNode{Name: "request", DurMS: float64(i)})
	}
	st := ts.Stats()
	if st.Entries != 3 || st.Sampled != 5 || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want 3 entries, 5 sampled, 2 dropped", st)
	}
	if _, ok := ts.Get("id0"); ok {
		t.Error("evicted trace still retrievable")
	}
	got, ok := ts.Get("id4")
	if !ok || got.Name != "request" || got.DurMS != 4 {
		t.Fatalf("Get(id4) = %+v %v", got, ok)
	}
	sums := ts.List(0)
	if len(sums) != 3 || sums[0].ID != "id4" || sums[2].ID != "id2" {
		t.Fatalf("List = %+v, want id4..id2 newest first", sums)
	}
	if got := ts.List(1); len(got) != 1 || got[0].ID != "id4" {
		t.Fatalf("List(1) = %+v", got)
	}
}

// TestTraceStoreByteCap: the byte cap evicts oldest-first independently
// of the entry cap.
func TestTraceStoreByteCap(t *testing.T) {
	big := &SpanNode{Name: strings.Repeat("x", 400)}
	probe := NewTraceStore(100, 1<<20)
	probe.Add("probe", big)
	one := probe.Stats().Bytes
	if one <= 0 {
		t.Fatal("no byte accounting")
	}

	ts := NewTraceStore(100, 2*one)
	for i := 0; i < 4; i++ {
		ts.Add("id"+strconv.Itoa(i), big)
	}
	st := ts.Stats()
	if st.Entries != 2 || st.Bytes > 2*one || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want 2 entries within %d bytes, 2 dropped", st, 2*one)
	}
}

// TestTraceStoreSlowestPin: the slowest trace of the window survives
// eviction — still retrievable by ID and flagged in listings after a
// burst of fast traces flushes the ring.
func TestTraceStoreSlowestPin(t *testing.T) {
	ts := NewTraceStore(2, 0)
	ts.Add("slow", &SpanNode{Name: "request", DurMS: 500})
	for i := 0; i < 5; i++ {
		ts.Add("fast"+strconv.Itoa(i), &SpanNode{Name: "request", DurMS: 1})
	}
	got, ok := ts.Get("slow")
	if !ok || got.DurMS != 500 {
		t.Fatalf("pinned slowest trace lost: %+v %v", got, ok)
	}
	sums := ts.List(0)
	// Ring holds the two newest fast traces; the pinned slow one is
	// appended and flagged.
	if len(sums) != 3 {
		t.Fatalf("List = %+v, want 2 ring + 1 pinned", sums)
	}
	last := sums[len(sums)-1]
	if last.ID != "slow" || !last.Slowest {
		t.Errorf("pinned entry = %+v, want slow/Slowest", last)
	}
	for _, s := range sums[:2] {
		if s.Slowest {
			t.Errorf("ring entry %s wrongly flagged slowest", s.ID)
		}
	}
}

// TestTraceStoreNilSafety: every method on a nil store is a no-op.
func TestTraceStoreNilSafety(t *testing.T) {
	var ts *TraceStore
	ts.Add("id", &SpanNode{Name: "x"})
	if _, ok := ts.Get("id"); ok {
		t.Error("nil store returned a trace")
	}
	if got := ts.List(0); got != nil {
		t.Errorf("nil store listed %v", got)
	}
	if st := ts.Stats(); st != (TraceStoreStats{}) {
		t.Errorf("nil store stats %+v", st)
	}
}
