package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNoTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatalf("expected nil span without a trace, got %+v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return the context unchanged")
	}
	// Every method must be safe on the nil span.
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Node() != nil {
		t.Fatal("nil span Node must be nil")
	}
	// And on a nil context.
	if _, sp := StartSpan(nil, "x"); sp != nil { //nolint:staticcheck // deliberate nil ctx
		t.Fatal("nil ctx must yield nil span")
	}
}

func TestTraceTree(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), "request")
	ctx1, a := StartSpan(ctx, "a")
	_, a1 := StartSpan(ctx1, "a1")
	a1.SetAttr("sql", "SELECT 1")
	time.Sleep(2 * time.Millisecond)
	a1.End()
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End()

	node := tr.Finish()
	if node.Name != "request" {
		t.Fatalf("root = %q", node.Name)
	}
	if len(node.Children) != 2 || node.Children[0].Name != "a" || node.Children[1].Name != "b" {
		t.Fatalf("children = %+v", node.Children)
	}
	a1n := node.Find("a1")
	if a1n == nil || a1n.Attrs["sql"] != "SELECT 1" {
		t.Fatalf("a1 node = %+v", a1n)
	}
	if a1n.DurMS <= 0 {
		t.Fatalf("a1 duration = %v", a1n.DurMS)
	}
	if an := node.Find("a"); an.DurMS < a1n.DurMS {
		t.Fatalf("parent a (%.3fms) shorter than child a1 (%.3fms)", an.DurMS, a1n.DurMS)
	}
	if node.Find("missing") != nil {
		t.Fatal("Find on a missing name must return nil")
	}
	out := node.Render()
	for _, want := range []string{"request", "a1", "sql=SELECT 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output lacks %q:\n%s", want, out)
		}
	}
}

func TestConcurrentChildren(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "child")
			sp.SetAttr("k", "v")
			sp.End()
		}()
	}
	wg.Wait()
	node := tr.Finish()
	if len(node.Children) != 32 {
		t.Fatalf("children = %d, want 32", len(node.Children))
	}
}

func TestOpenAndFinishClosesSpans(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), "root")
	_, sp := StartSpan(ctx, "leak")
	if open := tr.Open(); len(open) != 1 || open[0] != "leak" {
		t.Fatalf("Open = %v", open)
	}
	node := tr.Finish()
	if open := tr.Open(); len(open) != 0 {
		t.Fatalf("Open after Finish = %v", open)
	}
	if n := node.Find("leak"); n == nil || n.DurMS < 0 {
		t.Fatalf("leaked span node = %+v", n)
	}
	sp.End() // idempotent after force-close
}

func TestChildrenDurMS(t *testing.T) {
	n := &SpanNode{Name: "p", DurMS: 10, Children: []*SpanNode{{DurMS: 4}, {DurMS: 5}}}
	if got := n.ChildrenDurMS(); got != 9 {
		t.Fatalf("ChildrenDurMS = %v", got)
	}
}
