package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// Trace-store defaults: how many completed traces the ring retains and
// how many serialized bytes they may occupy, plus the window over which
// the slowest trace is pinned.
const (
	DefaultTraceStoreEntries = 256
	DefaultTraceStoreBytes   = 8 << 20 // 8 MiB
	DefaultSlowestWindow     = time.Minute
)

// StoredTrace is one completed trace retained for after-the-fact
// debugging: the full span tree plus its identity and completion time —
// the GET /api/traces/{id} payload.
type StoredTrace struct {
	ID string `json:"id"`
	// Time is the RFC3339Nano completion (store) time.
	Time  string  `json:"time"`
	Name  string  `json:"name"`
	DurMS float64 `json:"duration_ms"`
	// Bytes is the serialized size of the span tree, the unit the
	// store's byte cap is accounted in.
	Bytes int64     `json:"bytes"`
	Root  *SpanNode `json:"trace"`
}

// TraceSummary is one GET /api/traces line: enough to pick a trace
// worth fetching in full.
type TraceSummary struct {
	ID    string  `json:"id"`
	Time  string  `json:"time"`
	Name  string  `json:"name"`
	DurMS float64 `json:"duration_ms"`
	Bytes int64   `json:"bytes"`
	// Slowest marks the trace pinned in the always-keep slot: the
	// slowest completed trace of the current window, which byte/count
	// eviction never removes.
	Slowest bool `json:"slowest,omitempty"`
}

// TraceStoreStats is the store's occupancy and lifetime counters, the
// source of the seedb_trace{s_sampled,_store_*,_dropped} metric
// families.
type TraceStoreStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Sampled counts every trace ever added (explicitly requested and
	// head-sampled alike); Dropped counts traces evicted from the ring
	// under the count/byte caps.
	Sampled int64 `json:"sampled"`
	Dropped int64 `json:"dropped"`
}

// TraceStore is a bounded in-memory ring of recently completed traces,
// capped by entry count and serialized bytes (oldest evicted first),
// with one always-keep slot pinning the slowest trace per window so a
// burst of fast traces cannot flush the one worth debugging. All
// methods are nil-receiver safe.
type TraceStore struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	window     time.Duration

	entries []*StoredTrace // oldest first
	bytes   int64
	sampled int64
	dropped int64

	slowest     *StoredTrace
	windowStart time.Time
}

// NewTraceStore creates a store retaining up to maxEntries traces and
// maxBytes of serialized trees (<= 0 selects the defaults).
func NewTraceStore(maxEntries int, maxBytes int64) *TraceStore {
	if maxEntries <= 0 {
		maxEntries = DefaultTraceStoreEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultTraceStoreBytes
	}
	return &TraceStore{maxEntries: maxEntries, maxBytes: maxBytes, window: DefaultSlowestWindow}
}

// Add retains one completed trace. The root's serialized size is
// accounted against the byte cap; eviction runs immediately, so the
// store never exceeds its caps by more than the entry being added.
func (ts *TraceStore) Add(id string, root *SpanNode) {
	if ts == nil || root == nil || id == "" {
		return
	}
	data, err := json.Marshal(root)
	if err != nil {
		return
	}
	now := time.Now()
	st := &StoredTrace{
		ID:    id,
		Time:  now.UTC().Format(time.RFC3339Nano),
		Name:  root.Name,
		DurMS: root.DurMS,
		Bytes: int64(len(data)),
		Root:  root,
	}
	ts.mu.Lock()
	ts.sampled++
	if ts.slowest == nil || now.Sub(ts.windowStart) >= ts.window {
		ts.slowest, ts.windowStart = st, now
	} else if st.DurMS > ts.slowest.DurMS {
		ts.slowest = st
	}
	ts.entries = append(ts.entries, st)
	ts.bytes += st.Bytes
	for len(ts.entries) > 0 && (len(ts.entries) > ts.maxEntries || ts.bytes > ts.maxBytes) {
		old := ts.entries[0]
		ts.entries = ts.entries[1:]
		ts.bytes -= old.Bytes
		ts.dropped++
	}
	ts.mu.Unlock()
}

// Get returns the stored trace with the given ID (the pinned slowest
// slot included), or false.
func (ts *TraceStore) Get(id string) (*StoredTrace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i := len(ts.entries) - 1; i >= 0; i-- {
		if ts.entries[i].ID == id {
			return ts.entries[i], true
		}
	}
	if ts.slowest != nil && ts.slowest.ID == id {
		return ts.slowest, true
	}
	return nil, false
}

// List returns up to limit summaries, newest first (limit <= 0 means
// all). The pinned slowest trace is flagged, and included even when
// eviction has already pushed it out of the ring.
func (ts *TraceStore) List(limit int) []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.entries)+1)
	slowID := ""
	if ts.slowest != nil {
		slowID = ts.slowest.ID
	}
	inRing := false
	for i := len(ts.entries) - 1; i >= 0; i-- {
		e := ts.entries[i]
		if e.ID == slowID {
			inRing = true
		}
		out = append(out, TraceSummary{
			ID: e.ID, Time: e.Time, Name: e.Name, DurMS: e.DurMS,
			Bytes: e.Bytes, Slowest: e.ID == slowID,
		})
	}
	if ts.slowest != nil && !inRing {
		e := ts.slowest
		out = append(out, TraceSummary{
			ID: e.ID, Time: e.Time, Name: e.Name, DurMS: e.DurMS,
			Bytes: e.Bytes, Slowest: true,
		})
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Stats snapshots occupancy and lifetime counters.
func (ts *TraceStore) Stats() TraceStoreStats {
	if ts == nil {
		return TraceStoreStats{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return TraceStoreStats{
		Entries: len(ts.entries),
		Bytes:   ts.bytes,
		Sampled: ts.sampled,
		Dropped: ts.dropped,
	}
}
