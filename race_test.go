package seedb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRecommendParallelScansAndLoads drives the full stack
// under -race: concurrent Recommend calls using phased pruning and
// intra-query parallel scans (ScanParallelism > 1) against the shared
// result cache, while other goroutines mutate the catalog (LoadCSV into
// fresh tables, drops) — the operations that bump dataset versions and
// invalidate cache keys. Writes go to tables the recommendations never
// scan: sqldb documents that per-table loading must finish before that
// table is queried, and the race this test polices is in the shared
// engine/cache/executor state, not in a single table's vectors.
func TestConcurrentRecommendParallelScansAndLoads(t *testing.T) {
	client := newCachedCensusClient(t)
	ctx := context.Background()
	req := Request{Table: "census", TargetWhere: "marital = 'Unmarried'"}
	schema, err := NewSchema(
		Column{Name: "d", Type: TypeString},
		Column{Name: "m", Type: TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}

	const recommenders = 4
	const loaders = 2
	const rounds = 6
	var wg sync.WaitGroup
	errs := make([]error, recommenders+loaders)

	for g := 0; g < recommenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Alternate strategies so both the single-pass and the
				// phased (pruning) paths run concurrently; vary K so
				// whole-request keys differ and real executions overlap
				// cache hits.
				opts := Options{
					Strategy:        Comb,
					Pruning:         CIPruning,
					K:               2 + (g+i)%3,
					ScanParallelism: 3,
					EnableCache:     true,
				}
				if (g+i)%2 == 0 {
					opts.Strategy = Sharing
					opts.Pruning = NoPruning
				}
				if _, err := client.Recommend(ctx, req, opts); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}

	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("scratch_%d_%d", l, i)
				csv := "d,m\na,1.5\nb,2.5\nc,3.5\n"
				if err := client.LoadCSV(name, schema, ColumnLayout, strings.NewReader(csv)); err != nil {
					errs[recommenders+l] = err
					return
				}
				if err := client.DB().DropTable(name); err != nil {
					errs[recommenders+l] = err
					return
				}
			}
		}(l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}

	// Appends to the queried table invalidate its version: the next
	// request must recompute, not serve the pre-append cached result.
	tab, ok := client.DB().Table("census")
	if !ok {
		t.Fatal("census table missing")
	}
	row := make([]Value, tab.Schema().NumColumns())
	for i := range row {
		if tab.Schema().Column(i).Type == TypeString {
			row[i] = Str("Unmarried")
		} else {
			row[i] = Float(1)
		}
	}
	if err := tab.AppendRow(row); err != nil {
		t.Fatal(err)
	}
	opts := Options{Strategy: Sharing, K: 2, ScanParallelism: 3, EnableCache: true}
	res, err := client.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ServedFromCache {
		t.Fatal("post-append request served a stale cached result")
	}
}

// TestConcurrentShardedRecommends drives the shard router under -race:
// many concurrent Recommend calls over one sharded client, each fanning
// every view query out across the children (which layers fan-out
// goroutines under the engine's own query worker pool), against the
// shared cache and the router's stats memo. Appends happen after the
// concurrent phase — sqldb tables, sharded or not, require per-table
// loading to finish before queries start (see the test above) — and
// must invalidate the router's version vector.
func TestConcurrentShardedRecommends(t *testing.T) {
	client := NewSharded(3)
	if err := client.LoadDatasetRows("census", ColumnLayout, 1500); err != nil {
		t.Fatal(err)
	}
	client.EnableCache(0)
	ctx := context.Background()
	req := Request{Table: "census", TargetWhere: "marital = 'Unmarried'"}

	const workers = 4
	const rounds = 5
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				opts := Options{
					Strategy:        Comb,
					Pruning:         CIPruning,
					K:               2 + (g+i)%3,
					ScanParallelism: 2,
					EnableCache:     true,
				}
				if (g+i)%2 == 0 {
					opts.Strategy = Sharing
					opts.Pruning = NoPruning
				}
				res, err := client.Recommend(ctx, req, opts)
				if err != nil {
					errs[g] = err
					return
				}
				// Every query this invocation actually paid for must have
				// fanned out (a run may also be answered entirely by
				// query-level cache hits, executing nothing).
				if res.Metrics.QueriesExecuted > 0 && res.Metrics.ShardQueries == 0 {
					errs[g] = fmt.Errorf("executed sharded queries did not fan out: %+v", res.Metrics)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}

	// A partitioner-routed append bumps some child's version, so the
	// router's version vector changes and the next request recomputes.
	ti, err := client.Backend().TableInfo(ctx, "census")
	if err != nil {
		t.Fatal(err)
	}
	row := make([]Value, len(ti.Columns))
	for c := range row {
		if ti.Columns[c].Type == TypeString {
			row[c] = Str("Unmarried")
		} else {
			row[c] = Float(0.25)
		}
	}
	if err := client.AppendRows("census", [][]Value{row}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Recommend(ctx, req, Options{Strategy: Sharing, K: 2, ScanParallelism: 2, EnableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ServedFromCache {
		t.Fatal("post-append sharded request served a stale cached result")
	}
}
