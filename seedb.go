// Package seedb is a from-scratch Go implementation of SeeDB, the
// visualization recommendation engine of Vartak et al., "SeeDB: Efficient
// Data-Driven Visualization Recommendations to Support Visual Analytics"
// (PVLDB 8(13), 2015).
//
// Given a query selecting a subset of a table, SeeDB evaluates every
// candidate aggregate view (dimension, measure, aggregate) and recommends
// the k whose target-vs-reference distributions deviate most — the
// paper's deviation-based utility. The execution engine applies the
// paper's sharing optimizations (multi-aggregate queries, bin-packed
// multi-attribute GROUP BYs, combined target/reference queries, parallel
// execution) and pruning optimizations (Hoeffding–Serfling confidence
// intervals and multi-armed-bandit successive accepts/rejects) through a
// phased execution framework.
//
// A minimal session:
//
//	client := seedb.New()
//	if err := client.LoadDataset("census", seedb.ColumnLayout); err != nil { ... }
//	res, err := client.Recommend(ctx, seedb.Request{
//		Table:       "census",
//		TargetWhere: "marital = 'Unmarried'",
//	}, seedb.Options{K: 5})
//	for _, rec := range res.Recommendations {
//		fmt.Println(seedb.RenderChart(rec))
//	}
//
// The engine runs on an embedded pure-Go DBMS (internal/sqldb) offering
// both a row-oriented and a column-oriented physical layout, mirroring
// the ROW and COL systems of the paper's evaluation.
package seedb

import (
	"context"
	"database/sql"
	"fmt"
	"io"

	"seedb/internal/backend"
	"seedb/internal/backend/shardbe"
	"seedb/internal/backend/sqlbe"
	"seedb/internal/cache"
	"seedb/internal/chart"
	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// Re-exported request/response types. These alias the engine's types so
// downstream code only imports this package.
type (
	// Request describes one recommendation invocation.
	Request = core.Request
	// Options tunes the execution engine.
	Options = core.Options
	// Result is the output of Recommend.
	Result = core.Result
	// Recommendation is one scored view with its distributions.
	Recommendation = core.Recommendation
	// View is a candidate aggregate view (dimension, measure, agg).
	View = core.View
	// AggFunc names an aggregate function.
	AggFunc = core.AggFunc
	// Metrics reports execution cost.
	Metrics = core.Metrics
	// Strategy selects the execution strategy.
	Strategy = core.Strategy
	// PruningScheme selects the pruning optimization.
	PruningScheme = core.PruningScheme
	// RefMode selects the reference dataset.
	RefMode = core.RefMode

	// Schema describes a table's columns.
	Schema = sqldb.Schema
	// Column is one schema column.
	Column = sqldb.Column
	// Value is the engine's runtime scalar.
	Value = sqldb.Value
	// SQLResult is a raw SQL query result (the manual, mixed-initiative
	// side of the frontend).
	SQLResult = sqldb.Result
	// Layout selects a physical storage layout.
	Layout = sqldb.Layout

	// CacheStats is a snapshot of the shared result cache's counters.
	CacheStats = cache.Stats

	// Backend is the pluggable store seam: the engine talks to the data
	// through this interface, so Recommend can run against the embedded
	// store or any external SQL store. See docs/BACKENDS.md.
	Backend = backend.Backend
	// BackendCapabilities declares which engine optimizations a backend
	// supports (row-range scans for phased execution, vectorized scans).
	BackendCapabilities = backend.Capabilities
	// BackendTableInfo is a backend's schema-level table description.
	BackendTableInfo = backend.TableInfo
	// BackendExecOptions controls one backend query execution.
	BackendExecOptions = backend.ExecOptions
	// BackendExecStats reports one backend query execution's cost.
	BackendExecStats = backend.ExecStats
	// BackendRows is a materialized backend query result.
	BackendRows = backend.Rows
	// SQLBackendOptions configures a database/sql backend.
	SQLBackendOptions = sqlbe.Options
)

// DefaultCacheBudgetBytes is the result cache's default byte budget.
const DefaultCacheBudgetBytes = core.DefaultCacheBudgetBytes

// Re-exported constants.
const (
	// RowLayout stores tuples contiguously (the paper's ROW system).
	RowLayout = sqldb.LayoutRow
	// ColumnLayout stores typed column vectors (the paper's COL system).
	ColumnLayout = sqldb.LayoutCol

	// Execution strategies (Figure 5).
	NoOpt     = core.NoOpt
	Sharing   = core.Sharing
	Comb      = core.Comb
	CombEarly = core.CombEarly

	// Pruning schemes (Section 4.2).
	NoPruning     = core.NoPruning
	CIPruning     = core.CIPruning
	MABPruning    = core.MABPruning
	RandomPruning = core.RandomPruning

	// Reference modes (Section 2).
	RefAll        = core.RefAll
	RefComplement = core.RefComplement
	RefCustom     = core.RefCustom

	// Aggregate functions.
	AggAvg   = core.AggAvg
	AggSum   = core.AggSum
	AggCount = core.AggCount
	AggMin   = core.AggMin
	AggMax   = core.AggMax

	// Column types.
	TypeInt    = sqldb.TypeInt
	TypeFloat  = sqldb.TypeFloat
	TypeString = sqldb.TypeString
	TypeBool   = sqldb.TypeBool
)

// NewSchema builds a table schema from columns.
func NewSchema(cols ...Column) (*Schema, error) { return sqldb.NewSchema(cols...) }

// Value constructors for appending rows through DB().
var (
	// Null returns the SQL NULL value.
	Null = sqldb.Null
	// Int returns an integer value.
	Int = sqldb.Int
	// Float returns a floating-point value.
	Float = sqldb.Float
	// Str returns a string value.
	Str = sqldb.Str
	// Bool returns a boolean value.
	Bool = sqldb.Bool
)

// Client is a SeeDB session: a backend (by default an embedded
// in-memory database) plus the recommendation engine. It is safe for
// concurrent use once loading has finished.
type Client struct {
	db        *sqldb.DB   // nil for sharded clients and external backends
	shardDBs  []*sqldb.DB // sharded clients: the embedded child stores
	shardPart shardbe.Partitioner
	engine    *core.Engine
}

// New creates a client with an empty embedded in-memory database.
func New() *Client {
	db := sqldb.NewDB()
	return &Client{db: db, engine: core.NewEngine(backend.NewEmbedded(db))}
}

// NewSharded creates a client whose engine runs against a shard router
// over n embedded child stores (n <= 1 falls back to New). Dataset
// loads scatter rows across the children with the contiguous block
// partitioner — the order-preserving choice, so sharded execution
// reproduces an unsharded scan exactly — and AppendRows routes new rows
// round-robin. Recommend fans every view query out across the shards
// and merges decomposed partial aggregation states; see
// internal/backend/shardbe and the "Sharded execution" section of
// docs/ARCHITECTURE.md.
func NewSharded(n int) *Client {
	if n <= 1 {
		return New()
	}
	dbs, bes := shardbe.EmbeddedChildren(n)
	router, err := shardbe.New(bes, shardbe.Options{})
	if err != nil {
		panic(err) // unreachable: n >= 2 children
	}
	return &Client{
		shardDBs:  dbs,
		shardPart: shardbe.RoundRobin{},
		engine:    core.NewEngine(router),
	}
}

// Shards reports the client's shard fan-out width (0 for unsharded
// clients).
func (c *Client) Shards() int { return len(c.shardDBs) }

// NewWithBackend creates a client whose engine runs against the given
// backend (e.g. a NewSQLBackend over an external store). Such a client
// has no embedded database: the dataset-management helpers (LoadDataset,
// LoadCSV, CreateTable) return an error, and DB returns nil; everything
// else — Recommend, Query, caching — works identically, degrading per
// the backend's declared capabilities.
func NewWithBackend(be Backend) *Client {
	return &Client{engine: core.NewEngine(be)}
}

// NewSQLBackend wraps a database/sql handle as a SeeDB backend, pushing
// the engine's combined aggregate queries down to whatever store the
// driver reaches. See docs/BACKENDS.md for the capability profile and
// cache-invalidation contract.
func NewSQLBackend(db *sql.DB, opts SQLBackendOptions) Backend {
	return sqlbe.New(db, opts)
}

// DB exposes the embedded database for direct table management. It is
// nil for clients constructed with NewWithBackend.
func (c *Client) DB() *sqldb.DB { return c.db }

// Backend returns the store the client's engine executes against.
func (c *Client) Backend() Backend { return c.engine.Backend() }

// errNoEmbeddedDB reports a table-management call on an external-backend
// client.
func errNoEmbeddedDB(op string) error {
	return fmt.Errorf("seedb: %s requires the embedded database (client was built with NewWithBackend; manage data in the external store instead)", op)
}

// Datasets lists the built-in Table 1 dataset generators.
func (c *Client) Datasets() []string { return dataset.Names() }

// buildAndPlace materializes one table: straight into the embedded
// database for unsharded clients; for sharded clients into a staging
// store whose rows then scatter across the shard children through the
// order-preserving block partitioner.
func (c *Client) buildAndPlace(op, table string, build func(db *sqldb.DB) error) error {
	switch {
	case c.db != nil:
		return build(c.db)
	case c.shardDBs != nil:
		if _, exists := c.shardDBs[0].Table(table); exists {
			return fmt.Errorf("seedb: table %q already exists", table)
		}
		staging := sqldb.NewDB()
		if err := build(staging); err != nil {
			return err
		}
		t, ok := staging.Table(table)
		if !ok {
			return fmt.Errorf("seedb: %s did not produce table %q", op, table)
		}
		return shardbe.ScatterTable(staging, table, c.shardDBs, shardbe.Blocks{Total: t.NumRows()})
	default:
		return errNoEmbeddedDB(op)
	}
}

// LoadDataset generates one of the built-in paper datasets (Table 1) into
// the database under its canonical name, using the given layout. On
// sharded clients the rows are partitioned across the shard children.
func (c *Client) LoadDataset(name string, layout Layout) error {
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	return c.buildAndPlace("LoadDataset", spec.Name, func(db *sqldb.DB) error {
		_, err := dataset.Build(db, spec, layout)
		return err
	})
}

// LoadDatasetRows is LoadDataset with an explicit row count (the built-in
// specs default to laptop-friendly scales; pass the Table 1 sizes to
// reproduce the paper's configuration).
func (c *Client) LoadDatasetRows(name string, layout Layout, rows int) error {
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	return c.buildAndPlace("LoadDatasetRows", spec.Name, func(db *sqldb.DB) error {
		_, err := dataset.Build(db, spec.WithRows(rows), layout)
		return err
	})
}

// LoadCSV loads CSV data (header row required, matching the schema) into
// a new table, partitioned across the shard children on sharded clients.
func (c *Client) LoadCSV(table string, schema *Schema, layout Layout, r io.Reader) error {
	return c.buildAndPlace("LoadCSV", table, func(db *sqldb.DB) error {
		_, err := dataset.LoadCSV(db, table, schema, layout, r)
		return err
	})
}

// CreateTable creates an empty table (on every shard child for sharded
// clients); append rows via DB().Table(name) or AppendRows.
func (c *Client) CreateTable(name string, schema *Schema, layout Layout) error {
	switch {
	case c.db != nil:
		_, err := c.db.CreateTable(name, schema, layout)
		return err
	case c.shardDBs != nil:
		for _, db := range c.shardDBs {
			if _, err := db.CreateTable(name, schema, layout); err != nil {
				return err
			}
		}
		return nil
	default:
		return errNoEmbeddedDB("CreateTable")
	}
}

// AppendRows appends rows to an existing table. On sharded clients each
// row routes through the client's partitioner (round-robin by global
// sequence, so repeated appends stay balanced and deterministic); either
// way the table's version changes and cached results for it become
// unreachable.
func (c *Client) AppendRows(table string, rows [][]Value) error {
	switch {
	case c.db != nil:
		t, ok := c.db.Table(table)
		if !ok {
			return fmt.Errorf("seedb: table %q does not exist", table)
		}
		for _, row := range rows {
			if err := t.AppendRow(row); err != nil {
				return err
			}
		}
		return nil
	case c.shardDBs != nil:
		for _, row := range rows {
			if err := shardbe.AppendRow(c.shardDBs, table, c.shardPart, row); err != nil {
				return err
			}
		}
		return nil
	default:
		return errNoEmbeddedDB("AppendRows")
	}
}

// Query runs a raw SQL query — the manual chart-building path of the
// paper's mixed-initiative frontend. It routes through the client's
// backend, so it works over external stores too.
func (c *Client) Query(sql string) (*SQLResult, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext is Query with cancellation.
func (c *Client) QueryContext(ctx context.Context, sql string) (*SQLResult, error) {
	rows, stats, err := c.engine.Backend().Exec(ctx, sql, backend.ExecOptions{})
	if err != nil {
		return nil, err
	}
	return &SQLResult{
		Columns: rows.Columns,
		Rows:    rows.Rows,
		Stats: sqldb.ExecStats{
			RowsScanned: stats.RowsScanned,
			Groups:      stats.Groups,
			Vectorized:  stats.Vectorized,
			Workers:     stats.Workers,
		},
	}, nil
}

// Recommend evaluates the candidate view space for req and returns the
// top-k most interesting visualizations under the deviation metric.
//
// With Options.EnableCache set, results, shared view queries and
// materialized reference distributions are reused across Recommend
// calls (and across concurrent callers, via singleflight) until the
// dataset changes; see internal/cache.
func (c *Client) Recommend(ctx context.Context, req Request, opts Options) (*Result, error) {
	return c.engine.Recommend(ctx, req, opts)
}

// EnableCache installs a shared result cache with the given byte budget
// (<= 0 selects DefaultCacheBudgetBytes). Individual requests opt in
// with Options.EnableCache; without this call, the first opting-in
// request creates the cache lazily from its Options.CacheBudgetBytes.
func (c *Client) EnableCache(budgetBytes int64) {
	c.engine.SetCache(cache.New(budgetBytes))
}

// CacheStats returns the result cache's counters (the zero snapshot
// when no cache has been created).
func (c *Client) CacheStats() CacheStats {
	if cc := c.engine.Cache(); cc != nil {
		return cc.Stats()
	}
	return CacheStats{}
}

// Engine exposes the underlying execution engine for advanced use
// (oracles, custom harnesses).
func (c *Client) Engine() *core.Engine { return c.engine }

// RenderChart renders a recommendation as a side-by-side text bar chart.
func RenderChart(rec Recommendation) string {
	title := fmt.Sprintf("%s    [utility %.4f]", rec.View.String(), rec.Utility)
	return chart.Render(title, rec.Groups, rec.Target, rec.Reference, chart.Options{})
}

// RenderChartLabeled is RenderChart with custom column titles (e.g.
// "unmarried" vs "married").
func RenderChartLabeled(rec Recommendation, targetLabel, referenceLabel string) string {
	title := fmt.Sprintf("%s    [utility %.4f]", rec.View.String(), rec.Utility)
	return chart.Render(title, rec.Groups, rec.Target, rec.Reference, chart.Options{
		TargetLabel: targetLabel, ReferenceLabel: referenceLabel,
	})
}
