package seedb

import (
	"context"
	"strings"
	"testing"
)

func TestClientEndToEndCensus(t *testing.T) {
	// The paper's running example: recommend views for unmarried vs.
	// married adults over the census data.
	client := New()
	if err := client.LoadDatasetRows("census", ColumnLayout, 8000); err != nil {
		t.Fatal(err)
	}
	res, err := client.Recommend(context.Background(), Request{
		Table:       "census",
		TargetWhere: "marital = 'Unmarried'",
		Reference:   RefComplement,
	}, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 5 {
		t.Fatalf("got %d recommendations", len(res.Recommendations))
	}
	// The planted star view must appear among the top recommendations.
	found := false
	for _, rec := range res.Recommendations {
		if rec.View.Dimension == "sex" && rec.View.Measure == "capital_gain" {
			found = true
		}
	}
	if !found {
		t.Error("(sex, capital_gain) should be recommended")
	}
}

func TestClientManualQueryPath(t *testing.T) {
	client := New()
	if err := client.LoadDatasetRows("housing", RowLayout, 200); err != nil {
		t.Fatal(err)
	}
	res, err := client.Query("SELECT COUNT(*) FROM housing")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if _, err := client.QueryContext(context.Background(), "SELECT nosuch FROM housing"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestClientDatasetCatalog(t *testing.T) {
	client := New()
	names := client.Datasets()
	if len(names) != 10 {
		t.Errorf("datasets = %v", names)
	}
	if err := client.LoadDataset("nosuch", ColumnLayout); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestClientLoadCSVAndRecommend(t *testing.T) {
	client := New()
	csv := `city,segment,revenue
north,a,10
north,a,12
south,a,11
south,a,11
north,b,30
north,b,29
south,b,5
south,b,6
`
	schema, err := NewSchema(
		Column{Name: "city", Type: TypeString},
		Column{Name: "segment", Type: TypeString},
		Column{Name: "revenue", Type: TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.LoadCSV("sales", schema, ColumnLayout, strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	res, err := client.Recommend(context.Background(), Request{
		Table:       "sales",
		TargetWhere: "segment = 'b'",
		Reference:   RefComplement,
		Dimensions:  []string{"city"},
		Measures:    []string{"revenue"},
	}, Options{K: 1, Strategy: Sharing})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recommendations[0]
	// Segment b: north ≈ 29.5, south ≈ 5.5 — strong deviation from
	// segment a's even split.
	if rec.Utility < 0.2 {
		t.Errorf("utility = %.3f, want strong deviation", rec.Utility)
	}
}

func TestRenderChartOutput(t *testing.T) {
	client := New()
	if err := client.LoadDatasetRows("census", ColumnLayout, 4000); err != nil {
		t.Fatal(err)
	}
	res, err := client.Recommend(context.Background(), Request{
		Table:       "census",
		TargetWhere: "marital = 'Unmarried'",
		Dimensions:  []string{"sex"},
		Measures:    []string{"capital_gain"},
	}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderChart(res.Recommendations[0])
	for _, want := range []string{"AVG(capital_gain) BY sex", "utility", "Female", "Male"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	labeled := RenderChartLabeled(res.Recommendations[0], "unmarried", "married")
	if !strings.Contains(labeled, "unmarried") || !strings.Contains(labeled, "married") {
		t.Error("labeled chart missing custom labels")
	}
}

func TestCreateTableAndAppend(t *testing.T) {
	client := New()
	schema, err := NewSchema(
		Column{Name: "d", Type: TypeString},
		Column{Name: "m", Type: TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CreateTable("t", schema, RowLayout); err != nil {
		t.Fatal(err)
	}
	tab, ok := client.DB().Table("t")
	if !ok {
		t.Fatal("table missing")
	}
	if err := tab.AppendRow([]Value{Str("x"), Float(1.5)}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Query("SELECT d, m FROM t")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestBothLayoutsEndToEnd(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnLayout} {
		client := New()
		if err := client.LoadDatasetRows("bank", layout, 3000); err != nil {
			t.Fatal(err)
		}
		res, err := client.Recommend(context.Background(), Request{
			Table:       "bank",
			TargetWhere: "housing = 'yes'",
			Reference:   RefComplement,
		}, Options{K: 3, Strategy: Comb, Pruning: CIPruning})
		if err != nil {
			t.Fatalf("[%v] %v", layout, err)
		}
		if len(res.Recommendations) != 3 {
			t.Errorf("[%v] got %d recs", layout, len(res.Recommendations))
		}
	}
}
