package seedb_test

import (
	"context"
	"reflect"
	"testing"

	"seedb"
)

// loadExactTable populates a client with a small table whose float
// measures are exactly summable (multiples of 0.25), so sharded and
// unsharded execution must agree bit for bit.
func loadExactTable(t *testing.T, c *seedb.Client) {
	t.Helper()
	schema, err := seedb.NewSchema(
		seedb.Column{Name: "region", Type: seedb.TypeString},
		seedb.Column{Name: "segment", Type: seedb.TypeString},
		seedb.Column{Name: "qty", Type: seedb.TypeInt},
		seedb.Column{Name: "price", Type: seedb.TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("sales", schema, seedb.ColumnLayout); err != nil {
		t.Fatal(err)
	}
	regions := []string{"east", "west", "north", "south"}
	segments := []string{"retail", "online"}
	var rows [][]seedb.Value
	for i := 0; i < 400; i++ {
		price := seedb.Float(float64((i*7)%200) * 0.25)
		if i%13 == 0 {
			price = seedb.Null()
		}
		rows = append(rows, []seedb.Value{
			seedb.Str(regions[i%len(regions)]),
			seedb.Str(segments[(i/3)%len(segments)]),
			seedb.Int(int64(i % 9)),
			price,
		})
	}
	if err := c.AppendRows("sales", rows); err != nil {
		t.Fatal(err)
	}
}

// TestShardedClientMatchesUnsharded checks a sharded client's
// recommendations equal the unsharded embedded client's exactly.
func TestShardedClientMatchesUnsharded(t *testing.T) {
	ctx := context.Background()
	req := seedb.Request{Table: "sales", TargetWhere: "segment = 'online'"}
	opts := seedb.Options{Strategy: seedb.Sharing, K: 4, ScanParallelism: 1, KeepAllViews: true}

	plain := seedb.New()
	loadExactTable(t, plain)
	want, err := plain.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}

	sharded := seedb.NewSharded(3)
	if sharded.Shards() != 3 || sharded.DB() != nil {
		t.Fatalf("sharded client shape: shards=%d db=%v", sharded.Shards(), sharded.DB())
	}
	loadExactTable(t, sharded)
	got, err := sharded.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
		t.Errorf("sharded recommendations diverge:\n got %+v\nwant %+v", got.Recommendations, want.Recommendations)
	}
	if !reflect.DeepEqual(got.AllViews, want.AllViews) {
		t.Error("sharded full ranking diverges")
	}
	if got.Metrics.ShardQueries == 0 || got.Metrics.ShardFanout < got.Metrics.ShardQueries {
		t.Errorf("shard fan-out not recorded: %+v", got.Metrics)
	}
	if want.Metrics.ShardQueries != 0 {
		t.Errorf("unsharded run recorded shard queries: %+v", want.Metrics)
	}
}

// TestShardedClientQueryAndCache checks raw SQL routing and versioned
// cache invalidation through appends on a sharded client.
func TestShardedClientQueryAndCache(t *testing.T) {
	ctx := context.Background()
	c := seedb.NewSharded(2)
	loadExactTable(t, c)

	res, err := c.Query("SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY 2 DESC, region LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].I != 100 {
		t.Errorf("raw query rows = %+v", res.Rows)
	}

	req := seedb.Request{Table: "sales", TargetWhere: "segment = 'online'"}
	opts := seedb.Options{Strategy: seedb.Sharing, K: 3, EnableCache: true, ScanParallelism: 1}
	cold, err := c.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.ServedFromCache {
		t.Fatal("cold run served from cache")
	}
	warm, err := c.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Metrics.ServedFromCache {
		t.Errorf("repeat request not cached: %+v", warm.Metrics)
	}

	// Appending through the partitioner must change the version vector
	// and invalidate the cached result.
	if err := c.AppendRows("sales", [][]seedb.Value{
		{seedb.Str("east"), seedb.Str("online"), seedb.Int(1), seedb.Float(2.5)},
	}); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Metrics.ServedFromCache || fresh.Metrics.QueriesExecuted == 0 {
		t.Errorf("post-append request served stale: %+v", fresh.Metrics)
	}
}

// TestShardedClientLoadDataset checks built-in dataset loads scatter
// across shards and recommendations come back sane.
func TestShardedClientLoadDataset(t *testing.T) {
	c := seedb.NewSharded(4)
	if err := c.LoadDatasetRows("census", seedb.ColumnLayout, 800); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDatasetRows("census", seedb.ColumnLayout, 800); err == nil {
		t.Error("duplicate load should error")
	}
	res, err := c.Recommend(context.Background(), seedb.Request{
		Table:       "census",
		TargetWhere: "marital = 'Unmarried'",
	}, seedb.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 3 || res.Metrics.ShardQueries == 0 {
		t.Errorf("sharded dataset recommend: %d recs, metrics %+v", len(res.Recommendations), res.Metrics)
	}
}
